"""Tests for the performance fast paths and their behavioural contracts.

The perf work (speculative batched annealing, warm-started scale walks,
the inlined kernel dispatch loop, the ledger's running aggregates) is
required to be *behaviourally invisible*: identical results, fewer
cycles.  These tests pin that contract:

* ``Simulator.run`` clock semantics, including the
  ``run(until=..., max_events=0)`` regression (the clock must land on
  ``until`` even when the budget dispatches nothing);
* :class:`EventQueue` invariants under randomized interleaved
  push / cancel / pop, across the compaction threshold;
* :class:`CostLedger` running F/G/H aggregates versus ``breakdown()``,
  and rejection of NaN/inf charges;
* speculative ``anneal(width > 1)`` — identical budget accounting,
  determinism, batch evaluation via ``objective_many``;
* warm-started / speculative :class:`EnablerTuner` on the analytic toy
  system — fewer evaluations, same tuned points;
* the jobs-invariance contract end to end on real simulation configs:
  identical tuned points for ``jobs=1`` vs ``jobs=4`` with speculation
  on (and across reruns).
"""

import json
import math
import random

import numpy as np
import pytest

from repro.core import (
    AnnealingSchedule,
    CostLedger,
    EfficiencyRecord,
    Enabler,
    EnablerSpace,
    EnablerTuner,
    ScalabilityProcedure,
    ScalingPath,
    anneal,
)
from repro.sim.events import Event, EventQueue
from repro.sim.kernel import Simulator


# ---------------------------------------------------------------------------
# Simulator.run clock contract
# ---------------------------------------------------------------------------

class TestRunClockContract:
    def test_until_with_zero_budget_advances_clock(self):
        """Regression: ``run(until=..., max_events=0)`` used to return
        without moving the clock.  It must dispatch nothing but still
        land on ``until``."""
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "a")
        sim.run(until=10.0, max_events=0)
        assert sim.now == 10.0
        assert fired == []
        assert sim.events_executed == 0
        assert sim.pending == 1

    def test_event_left_behind_advanced_clock_still_fires(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(sim.now))
        sim.run(until=10.0, max_events=0)
        sim.run()
        # The clock never runs backwards: the stale event fires with the
        # clock already at 10.
        assert fired == [10.0]
        assert sim.now == 10.0

    def test_budget_exhaustion_still_lands_on_until(self):
        sim = Simulator()
        fired = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, fired.append, t)
        sim.run(until=10.0, max_events=1)
        assert fired == [1.0]
        assert sim.now == 10.0
        assert sim.pending == 2
        sim.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_zero_budget_without_until_is_a_noop(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run(max_events=0)
        assert sim.now == 0.0
        assert sim.pending == 1

    def test_plain_horizon_run_unchanged(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(7.0, fired.append, "b")
        sim.run(until=5.0)
        assert fired == ["a"]
        assert sim.now == 5.0
        sim.run(until=9.0)
        assert fired == ["a", "b"]
        assert sim.now == 9.0


# ---------------------------------------------------------------------------
# EventQueue invariants under stress
# ---------------------------------------------------------------------------

class TestEventQueueStress:
    def test_interleaved_push_cancel_pop_with_compaction(self):
        """Randomized workload crossing the compaction threshold.

        Invariants checked continuously: ``len(queue)`` equals the
        number of live events, pops come out in strictly increasing
        ``(time, seq)`` order relative to the *remaining* schedule, and
        cancelled events never surface.
        """
        rng = random.Random(1234)
        queue = EventQueue()
        seq = 0
        live = {}  # seq -> event
        popped = []

        for round_ in range(3000):
            action = rng.random()
            if action < 0.55 or not live:
                ev = Event(rng.uniform(0.0, 100.0), seq, lambda: None, ())
                queue.push(ev)
                live[seq] = ev
                seq += 1
            elif action < 0.85:
                victim = live.pop(rng.choice(list(live)))
                victim.cancel()
                queue.note_cancelled()
            else:
                ev = queue.pop()
                assert not ev.cancelled
                assert ev.fn is not None
                assert ev.seq in live
                # Earliest live event: nothing remaining may sort below it.
                assert all(
                    (ev.time, ev.seq) <= (other.time, other.seq)
                    for other in live.values()
                )
                del live[ev.seq]
                popped.append(ev)
            assert len(queue) == len(live)
            assert bool(queue) == bool(live)

        # Drain: remaining live events come out in exact (time, seq) order.
        expected = sorted(live.values(), key=lambda e: (e.time, e.seq))
        drained = [queue.pop() for _ in range(len(live))]
        assert [(e.time, e.seq) for e in drained] == [
            (e.time, e.seq) for e in expected
        ]
        assert len(queue) == 0
        with pytest.raises(IndexError):
            queue.pop()

    def test_mass_cancellation_triggers_compaction(self):
        """Cancel far more than half of a large heap and verify the
        physical heap shrank while behaviour is unchanged."""
        queue = EventQueue()
        events = [Event(float(i), i, lambda: None, ()) for i in range(500)]
        for ev in events:
            queue.push(ev)
        for ev in events[:400]:
            ev.cancel()
            queue.note_cancelled()
        assert len(queue) == 100
        assert len(queue._heap) < 500  # compaction dropped dead entries
        out = [queue.pop() for _ in range(100)]
        assert [e.seq for e in out] == list(range(400, 500))

    def test_pop_until_respects_horizon(self):
        queue = EventQueue()
        for i in range(10):
            queue.push(Event(float(i), i, lambda: None, ()))
        early = []
        while True:
            ev = queue.pop_until(4.0)
            if ev is None:
                break
            early.append(ev.time)
        assert early == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert len(queue) == 5  # the rest stayed queued
        assert queue.pop_until(None).time == 5.0

    def test_pop_until_discards_cancelled_head_beyond_horizon(self):
        queue = EventQueue()
        dead = Event(8.0, 0, lambda: None, ())
        queue.push(dead)
        queue.push(Event(9.0, 1, lambda: None, ()))
        dead.cancel()
        queue.note_cancelled()
        assert queue.pop_until(5.0) is None  # live head is beyond horizon
        ev = queue.pop_until(None)
        assert (ev.time, ev.seq) == (9.0, 1)
        assert queue.pop_until(None) is None  # empty queue

    def test_pop_until_ties_respect_seq_order(self):
        queue = EventQueue()
        for s in range(5):
            queue.push(Event(1.0, s, lambda: None, ()))
        order = [queue.pop_until(1.0).seq for _ in range(5)]
        assert order == [0, 1, 2, 3, 4]


# ---------------------------------------------------------------------------
# CostLedger running aggregates
# ---------------------------------------------------------------------------

class TestLedgerAggregates:
    def test_rejects_non_finite_charges(self):
        ledger = CostLedger()
        for bad in (math.nan, math.inf, -math.inf):
            with pytest.raises(ValueError, match="non-finite"):
                ledger.charge("g.update", bad)
        with pytest.raises(ValueError, match="negative"):
            ledger.charge("g.update", -1.0)
        # Failed charges must leave no trace in totals or aggregates.
        assert ledger.breakdown() == {}
        assert ledger.F == ledger.G == ledger.H == 0.0
        assert ledger.grand_total == 0.0

    def test_running_aggregates_match_breakdown(self):
        """F/G/H are maintained incrementally on ``charge``; they must
        always equal what a scan over ``breakdown()`` computes."""
        rng = random.Random(7)
        ledger = CostLedger()
        categories = [
            "f.exec", "f.comm",
            "g.update", "g.sched", "g.msg",
            "h.idle", "h.queue",
        ]
        for _ in range(2000):
            ledger.charge(rng.choice(categories), rng.uniform(0.0, 10.0))

        breakdown = ledger.breakdown()

        def scan(prefix):
            return sum(v for c, v in breakdown.items() if c.startswith(prefix))

        assert ledger.F == pytest.approx(scan("f."), rel=1e-12)
        assert ledger.G == pytest.approx(scan("g."), rel=1e-12)
        assert ledger.H == pytest.approx(scan("h."), rel=1e-12)
        assert ledger.grand_total == pytest.approx(
            sum(breakdown.values()), rel=1e-12
        )

    def test_zero_amount_charges_count_consistently(self):
        ledger = CostLedger()
        ledger.charge("f.exec", 0.0)
        ledger.charge("f.exec", 3.0)
        assert ledger.F == 3.0
        assert ledger.total("f.exec") == 3.0


# ---------------------------------------------------------------------------
# Speculative annealing
# ---------------------------------------------------------------------------

def _walk(seed, width=1, iterations=40, objective_many=None, objective=None):
    objective = objective or (lambda x: (x - 17) ** 2)
    return anneal(
        initial=0,
        objective=objective,
        neighbor=lambda x, r: x + (1 if r.random() < 0.5 else -1),
        rng=np.random.default_rng(seed),
        schedule=AnnealingSchedule(iterations=iterations, t0=10.0, cooling=0.95),
        width=width,
        objective_many=objective_many,
    )


class TestSpeculativeAnneal:
    def test_width_validation(self):
        with pytest.raises(ValueError, match="width"):
            _walk(0, width=0)

    def test_budget_accounting_matches_serial(self):
        """Speculation reorders evaluation, it never adds evaluations:
        exactly one evaluation / iteration / cooling step per examined
        proposal, same as the serial walk."""
        for width in (1, 3, 4, 7):
            result = _walk(5, width=width, iterations=10)
            assert result.evaluations == 11  # initial + 10 moves
            assert len(result.trace) == 11

    def test_deterministic_across_reruns(self):
        for width in (1, 4):
            a = _walk(9, width=width)
            b = _walk(9, width=width)
            assert a.best == b.best
            assert a.best_value == b.best_value
            assert a.trace == b.trace

    def test_objective_many_receives_bursts(self):
        batches = []

        def many(points):
            batches.append(len(points))
            return [(x - 17) ** 2 for x in points]

        result = _walk(3, width=3, iterations=7, objective_many=many)
        # 7 iterations in bursts of 3: 3 + 3 + 1; the initial point goes
        # through the scalar objective.
        assert batches == [3, 3, 1]
        assert result.evaluations == 8

    def test_objective_many_agrees_with_scalar_fallback(self):
        """With ``objective_many`` absent the speculative path falls
        back to scalar evaluation; both routes must produce the same
        walk (all randomness is drawn before evaluation)."""
        via_batch = _walk(
            11, width=4, objective_many=lambda pts: [(x - 17) ** 2 for x in pts]
        )
        via_scalar = _walk(11, width=4)
        assert via_batch.best == via_scalar.best
        assert via_batch.trace == via_scalar.trace

    def test_trace_monotone_under_speculation(self):
        result = _walk(2, width=4)
        assert all(
            result.trace[i + 1] <= result.trace[i]
            for i in range(len(result.trace) - 1)
        )

    def test_speculative_walk_still_finds_minimum(self):
        result = _walk(0, width=4, iterations=400)
        assert abs(result.best - 17) <= 1


# ---------------------------------------------------------------------------
# Warm-started, speculative tuning on the analytic toy system
# ---------------------------------------------------------------------------

class _ToyObservation:
    def __init__(self, F, G, H, success=1.0):
        self.record = EfficiencyRecord(F=F, G=G, H=H)
        self.success_rate = success


def _toy_system(k, settings):
    """Scale-proportional toy RMS (same shape as test_core_tuner_procedure):
    tau=10 is the unique in-band grid point at every scale."""
    tau = settings["tau"]
    success = 1.0 if tau <= 40 else max(0.0, 1.0 - (tau - 40) / 80.0)
    F = 100.0 * k * success
    G = 140.0 * k * (10.0 / tau)
    H = 5.0 * k
    return _ToyObservation(F, G, H, success)


def _toy_space():
    return EnablerSpace(
        [Enabler("tau", (5.0, 10.0, 20.0, 40.0, 80.0), default_index=1)]
    )


class TestWarmStartedTuner:
    def _tuner(self, **kw):
        kw.setdefault("schedule", AnnealingSchedule(iterations=2, t0=0.5))
        kw.setdefault("seed", 1)
        return EnablerTuner(_toy_system, _toy_space(), **kw)

    def test_speculation_validation(self):
        with pytest.raises(ValueError, match="speculation"):
            self._tuner(speculation=0)

    def test_warm_start_cuts_evaluations_same_answer(self):
        cold = self._tuner()
        base_cold = cold.tune_base(1.0)
        cold_point = cold.tune(2.0, base_cold.efficiency)

        warm = self._tuner()
        base_warm = warm.tune_base(1.0)
        warm_point = warm.tune(
            2.0, base_warm.efficiency, warm_start=base_warm.settings
        )

        assert warm_point.settings == cold_point.settings == {"tau": 10.0}
        assert warm_point.feasible and cold_point.feasible
        # The warm presweep scans a window, not the grid: strictly fewer
        # distinct simulations at the new scale.
        assert warm.evaluations_by_scale()[2.0] < cold.evaluations_by_scale()[2.0]

    def test_speculative_tuner_matches_serial_points(self):
        serial = self._tuner(speculation=1)
        spec = self._tuner(speculation=4)
        p_serial = serial.tune_base(1.0)
        p_spec = spec.tune_base(1.0)
        assert p_spec.settings == p_serial.settings == {"tau": 10.0}
        assert p_spec.feasible

    def test_speculative_tuner_batches_through_batch_simulate(self):
        batch_sizes = []

        def batch(pairs):
            batch_sizes.append(len(pairs))
            return [_toy_system(k, s) for k, s in pairs]

        tuner = EnablerTuner(
            _toy_system,
            _toy_space(),
            schedule=AnnealingSchedule(iterations=8, t0=0.5),
            seed=3,
            batch_simulate=batch,
            speculation=4,
        )
        point = tuner.tune_base(1.0)
        assert point.settings == {"tau": 10.0}
        # The presweep batch (full grid) and at least the first annealing
        # burst go through batch_simulate.
        assert batch_sizes and batch_sizes[0] >= 4

    def test_evaluations_by_scale_sums_to_cache(self):
        tuner = self._tuner()
        base = tuner.tune_base(1.0)
        tuner.tune(2.0, base.efficiency, warm_start=base.settings)
        by_scale = tuner.evaluations_by_scale()
        assert set(by_scale) == {1.0, 2.0}
        assert sum(by_scale.values()) == tuner.evaluations

    def test_procedure_warm_start_matches_cold_answers(self):
        def run(warm_start):
            proc = ScalabilityProcedure(
                _toy_system,
                _toy_space(),
                path=ScalingPath((1, 2, 3)),
                schedule=AnnealingSchedule(iterations=5, t0=0.5),
                seed=2,
                warm_start=warm_start,
            )
            return proc, proc.run(name="TOY")

        cold_proc, cold = run(False)
        warm_proc, warm = run(True)
        assert [p.settings for p in warm.points] == [
            p.settings for p in cold.points
        ]
        assert warm.feasible_through == cold.feasible_through
        assert warm_proc.tuner.evaluations < cold_proc.tuner.evaluations


# ---------------------------------------------------------------------------
# Jobs invariance on real configurations (the determinism contract)
# ---------------------------------------------------------------------------

def _point_fingerprint(point):
    return {
        "scale": point.scale,
        "settings": dict(point.settings),
        "F": point.record.F,
        "G": point.record.G,
        "H": point.record.H,
        "success": point.success_rate,
        "objective": point.objective,
        "feasible": point.feasible,
    }


@pytest.mark.slow
class TestJobsInvariance:
    """Tuned points must be byte-identical for jobs=1 vs jobs=4 with
    speculation on, and across reruns — worker count and batch
    scheduling may change wall clock only."""

    PROFILE_KW = dict(
        name="jobs-invariance",
        base_resources=8,
        base_schedulers=4,
        fixed_resources=8,
        fixed_schedulers=4,
        base_rate_per_resource=0.00028,
        horizon=3000.0,
        drain=20000.0,
        scales=(1, 2),
        sa_iterations=3,
    )

    def _tuned_bytes(self, jobs):
        from repro.experiments.cases import get_case, make_batch_simulate, make_simulate
        from repro.experiments.config import ScaleProfile
        from repro.experiments.parallel import ExperimentEngine

        profile = ScaleProfile(**self.PROFILE_KW)
        case = get_case(1)
        with ExperimentEngine(jobs=jobs, cache=None) as engine:
            memo = {}
            simulate = make_simulate(
                case, "LOWEST", profile, seed=11, memo=memo, engine=engine
            )
            batch = make_batch_simulate(
                case, "LOWEST", profile, seed=11, memo=memo, engine=engine
            )
            procedure = ScalabilityProcedure(
                simulate,
                case.enabler_space(),
                path=case.path(profile),
                schedule=AnnealingSchedule(iterations=3, t0=0.5),
                seed=11,
                batch_simulate=batch,
                speculation=4,
                warm_start=True,
            )
            result = procedure.run(name="LOWEST")
        return json.dumps(
            [_point_fingerprint(p) for p in result.points], sort_keys=True
        ).encode()

    def test_jobs_1_vs_4_and_rerun_identical(self):
        serial = self._tuned_bytes(jobs=1)
        parallel = self._tuned_bytes(jobs=4)
        rerun = self._tuned_bytes(jobs=4)
        assert serial == parallel
        assert parallel == rerun
