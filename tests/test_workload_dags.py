"""Tests for the dependency-constrained workload extension."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import SimulationConfig, build_system, run_simulation, summarize
from repro.grid import JobState
from repro.sim import RngHub
from repro.workload import DagWorkload, DagWorkloadGenerator, WorkloadGenerator


def base_gen(rate=0.01, clusters=3):
    return WorkloadGenerator(rate=rate, n_clusters=clusters)


def rng(seed=0):
    return RngHub(seed).stream("wl")


class TestDagWorkloadGenerator:
    def test_validation(self):
        with pytest.raises(ValueError):
            DagWorkloadGenerator(base_gen(), dependency_prob=1.5)
        with pytest.raises(ValueError):
            DagWorkloadGenerator(base_gen(), max_parents=0)
        with pytest.raises(ValueError):
            DagWorkloadGenerator(base_gen(), window=0)

    def test_zero_probability_gives_no_edges(self):
        dag = DagWorkloadGenerator(base_gen(), dependency_prob=0.0).generate(
            5000.0, rng()
        )
        assert dag.parents == {}

    def test_edges_generated_and_acyclic(self):
        dag = DagWorkloadGenerator(base_gen(), dependency_prob=0.6).generate(
            20000.0, rng(1)
        )
        assert dag.parents  # some dependencies exist
        dag.validate()
        for child, ps in dag.parents.items():
            assert all(p < child for p in ps)

    def test_parents_within_window(self):
        dag = DagWorkloadGenerator(
            base_gen(), dependency_prob=1.0, window=3
        ).generate(20000.0, rng(2))
        for child, ps in dag.parents.items():
            assert all(child - p <= 3 for p in ps)

    def test_max_parents_respected(self):
        dag = DagWorkloadGenerator(
            base_gen(), dependency_prob=1.0, max_parents=2, window=8
        ).generate(20000.0, rng(3))
        assert all(len(ps) <= 2 for ps in dag.parents.values())
        assert any(len(ps) == 2 for ps in dag.parents.values())

    def test_children_inverse_relation(self):
        dag = DagWorkloadGenerator(base_gen(), dependency_prob=0.7).generate(
            10000.0, rng(4)
        )
        children = dag.children()
        for child, ps in dag.parents.items():
            for p in ps:
                assert child in children[p]

    def test_deterministic(self):
        g = DagWorkloadGenerator(base_gen(), dependency_prob=0.5)
        a = g.generate(5000.0, rng(5))
        b = g.generate(5000.0, rng(5))
        assert a.parents == b.parents


class TestDependencyExecution:
    def cfg(self, **kw):
        kw.setdefault("dependency_prob", 0.5)
        return SimulationConfig(
            rms="LOWEST",
            n_schedulers=3,
            n_resources=9,
            workload_rate=0.005,
            update_interval=16.0,
            horizon=3000.0,
            drain=60000.0,
            seed=4,
            **kw,
        )

    def test_children_run_after_parents(self):
        system = build_system(self.cfg())
        assert system.coordinator is not None
        dag = system.coordinator.dag
        assert dag.parents, "seed must produce some dependencies"
        system.sim.run(until=system.config.horizon)
        deadline = system.config.horizon + system.config.drain
        while system.sim.now < deadline and any(
            j.state != JobState.COMPLETED for j in system.jobs
        ):
            system.sim.run(until=min(deadline, system.sim.now + 2000.0))
        by_id = {j.job_id: j for j in system.jobs}
        for child_id, ps in dag.parents.items():
            child = by_id[child_id]
            assert child.state == JobState.COMPLETED
            for p in ps:
                # precedence: child starts service after parent completes
                assert child.start_service >= by_id[p].completion_time - 1e-9

    def test_cross_cluster_edges_charge_H(self):
        m_dep = run_simulation(self.cfg())
        m_indep = run_simulation(self.cfg(dependency_prob=0.0))
        # Same workload stream; the DAG variant stages data across
        # clusters, so its RP overhead is at least as large.
        assert m_dep.record.H >= m_indep.record.H

    def test_no_dependencies_no_coordinator(self):
        system = build_system(self.cfg(dependency_prob=0.0))
        assert system.coordinator is None

    def test_staged_edges_counted(self):
        system = build_system(self.cfg(dependency_prob=0.9))
        system.sim.run(until=system.config.horizon)
        deadline = system.config.horizon + system.config.drain
        while system.sim.now < deadline and any(
            j.state != JobState.COMPLETED for j in system.jobs
        ):
            system.sim.run(until=min(deadline, system.sim.now + 2000.0))
        assert system.coordinator.staged_edges >= 0  # counted, never negative


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=100),
    prob=st.floats(min_value=0.0, max_value=1.0),
)
def test_dag_generation_invariants(seed, prob):
    """For any probability/seed the generated DAG validates."""
    dag = DagWorkloadGenerator(base_gen(), dependency_prob=prob).generate(
        4000.0, rng(seed)
    )
    dag.validate()
    ids = {j.job_id for j in dag.jobs}
    assert set(dag.parents) <= ids
