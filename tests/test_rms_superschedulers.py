"""Protocol tests for S-I, R-I, and Sy-I (the superscheduler family)."""

import pytest

from repro.grid import JobState
from repro.network import Message, MessageKind
from repro.rms import (
    ReceiverInitiatedScheduler,
    SenderInitiatedScheduler,
    SuperScheduler,
    SymmetricScheduler,
)
from repro.workload import JobClass

from helpers import MiniGrid, make_job


def mark_cluster_loaded(sched, load=5.0):
    for rid in sched.table.loads():
        sched.table.record(rid, load, sched.sim.now)


def make_grid(cls, n_clusters=2, lp=1):
    g = MiniGrid(
        scheduler_cls=cls, n_clusters=n_clusters, resources_per_cluster=2,
        use_middleware=True,
    )
    for s in g.schedulers:
        s.l_p = lp
    return g


class TestSuperSchedulerEstimates:
    def test_awt_scales_with_backlog(self):
        g = make_grid(SenderInitiatedScheduler)
        s = g.schedulers[0]
        assert s.awt() == 0.0
        mark_cluster_loaded(s, load=2.0)
        assert s.awt() == pytest.approx(2.0 * s._service_duration_est)

    def test_ert_uses_speed_estimate(self):
        g = make_grid(SenderInitiatedScheduler)
        s = g.schedulers[0]
        assert s.ert(100.0) == pytest.approx(100.0)  # prior speed 1.0
        s._service_speed_est = 2.0
        assert s.ert(100.0) == pytest.approx(50.0)

    def test_completion_updates_estimates(self):
        g = make_grid(SenderInitiatedScheduler)
        s = g.schedulers[0]
        job = make_job(execution=100.0)
        job.mark_placed(0)
        job.mark_running(0.0)
        job.mark_completed(50.0)  # measured speed 2.0, duration 50
        before_dur = s._service_duration_est
        s.after_completion(job)
        assert s._service_duration_est < before_dur
        assert s._service_speed_est > 1.0

    def test_choose_by_att_min_wins(self):
        g = make_grid(SenderInitiatedScheduler)
        s = g.schedulers[0]
        peer = g.schedulers[1]
        # peer ATT clearly better
        assert s.choose_by_att(100.0, [(None, 500.0, 0.5), (peer, 100.0, 2.0)]) is peer

    def test_choose_by_att_tie_breaks_on_rus(self):
        g = make_grid(SenderInitiatedScheduler)
        s = g.schedulers[0]
        peer = g.schedulers[1]
        # ATTs within psi=5: lower RUS (local) wins.
        assert s.choose_by_att(100.0, [(None, 100.0, 0.1), (peer, 98.0, 2.0)]) is None

    def test_choose_by_att_empty(self):
        g = make_grid(SenderInitiatedScheduler)
        assert g.schedulers[0].choose_by_att(1.0, []) is None

    def test_middleware_flag_set(self):
        assert SuperScheduler.use_middleware is True


class TestSenderInitiated:
    def test_remote_job_polls_via_middleware(self):
        g = make_grid(SenderInitiatedScheduler)
        job = make_job(execution=900.0, job_class=JobClass.REMOTE)
        g.submit(job, cluster=0)
        g.sim.run()
        assert g.schedulers[0].polls_started == 1
        assert g.middleware.relayed >= 2  # request + reply at least
        assert job.state == JobState.COMPLETED

    def test_moves_to_faster_cluster(self):
        g = make_grid(SenderInitiatedScheduler)
        s0 = g.schedulers[0]
        mark_cluster_loaded(s0, load=4.0)  # local AWT huge
        job = make_job(execution=900.0, job_class=JobClass.REMOTE)
        g.submit(job, cluster=0)
        g.sim.run()
        assert job.executed_cluster == 1
        assert job.transfers == 1

    def test_stays_local_when_equal(self):
        g = make_grid(SenderInitiatedScheduler)
        job = make_job(execution=900.0, job_class=JobClass.REMOTE)
        g.submit(job, cluster=0)
        g.sim.run()
        assert job.executed_cluster == 0  # tie -> RUS tie -> local kept

    def test_local_class_never_polls(self):
        g = make_grid(SenderInitiatedScheduler)
        job = make_job(execution=10.0, job_class=JobClass.LOCAL)
        g.submit(job, cluster=0)
        g.sim.run()
        assert g.schedulers[0].polls_started == 0

    def test_poll_timeout_places_job(self):
        g = make_grid(SenderInitiatedScheduler)
        g.schedulers[1].on_poll_request = lambda m: None  # drop
        job = make_job(execution=100.0, job_class=JobClass.REMOTE)
        g.submit(job, cluster=0)
        g.sim.run()
        assert job.state == JobState.COMPLETED


class TestReceiverInitiated:
    def test_volunteering_requires_underutilized_resource(self):
        g = make_grid(ReceiverInitiatedScheduler)
        s1 = g.schedulers[1]
        s1.start_volunteering()
        mark_cluster_loaded(s1, load=2.0)
        g.sim.run(until=s1.volunteer_interval * 2.5)
        assert s1.volunteers_sent == 0

    def test_volunteering_periodic(self):
        g = make_grid(ReceiverInitiatedScheduler)
        s1 = g.schedulers[1]
        s1.start_volunteering()
        g.sim.run(until=s1.volunteer_interval * 2.5)
        # idle cluster volunteers each period (to l_p=1 peer): ~3 ticks
        assert s1.volunteers_sent in (2, 3)

    def test_parked_job_moves_on_volunteer(self):
        g = make_grid(ReceiverInitiatedScheduler)
        s0, s1 = g.schedulers
        mark_cluster_loaded(s0, load=4.0)
        job = make_job(execution=900.0, job_class=JobClass.REMOTE)
        g.submit(job, cluster=0)
        g.sim.run(until=10.0)
        assert job.state == JobState.WAITING
        s1.start_volunteering()
        g.sim.run(until=3000.0)  # bounded: the volunteer loop never exhausts
        assert s0.demands_sent >= 1
        assert job.executed_cluster == 1
        assert job.transfers == 1
        assert job.state == JobState.COMPLETED

    def test_light_cluster_schedules_immediately(self):
        g = make_grid(ReceiverInitiatedScheduler)
        job = make_job(execution=900.0, job_class=JobClass.REMOTE)
        g.submit(job, cluster=0)
        g.sim.run()
        assert job.executed_cluster == 0

    def test_volunteer_with_no_parked_jobs_ignored(self):
        g = make_grid(ReceiverInitiatedScheduler)
        s0, s1 = g.schedulers
        s1.start_volunteering()
        g.sim.run(until=s1.volunteer_interval * 1.5)
        assert s0.demands_sent == 0

    def test_demand_reply_keeps_job_local_if_att_worse(self):
        g = make_grid(ReceiverInitiatedScheduler)
        s0, s1 = g.schedulers
        mark_cluster_loaded(s0, load=1.0)  # just above T_l, parks
        # volunteer looks MUCH slower
        s1._service_speed_est = 0.01
        s1._service_duration_est = 5000.0
        mark_cluster_loaded(s1, load=0.4)
        job = make_job(execution=900.0, job_class=JobClass.REMOTE)
        g.submit(job, cluster=0)
        g.sim.run(until=10.0)
        s1.start_volunteering()
        g.sim.run(until=3000.0)
        assert job.executed_cluster == 0  # stayed home

    def test_park_timeout_safety_net(self):
        g = make_grid(ReceiverInitiatedScheduler)
        s0 = g.schedulers[0]
        s0.wait_timeout = 30.0
        mark_cluster_loaded(s0, load=4.0)
        job = make_job(execution=10.0, job_class=JobClass.REMOTE)
        g.submit(job, cluster=0)
        g.sim.run()  # nobody ever volunteers
        assert job.state == JobState.COMPLETED
        assert job.executed_cluster == 0


class TestSymmetric:
    def test_fallback_to_polling_without_adverts(self):
        g = make_grid(SymmetricScheduler)
        job = make_job(execution=900.0, job_class=JobClass.REMOTE)
        g.submit(job, cluster=0)
        g.sim.run()
        assert g.schedulers[0].fallback_polls == 1
        assert job.state == JobState.COMPLETED

    def test_uses_fresh_advert_instead_of_polling(self):
        g = make_grid(SymmetricScheduler)
        s0, s1 = g.schedulers
        s1.start_volunteering()
        g.sim.run(until=s1.volunteer_interval + 5.0)
        mark_cluster_loaded(s0, load=4.0)
        job = make_job(execution=900.0, job_class=JobClass.REMOTE)
        g.submit(job, cluster=0)
        g.sim.run(until=3000.0)
        assert s0.fallback_polls == 0
        assert s0.advert_placements == 1
        assert job.executed_cluster == 1

    def test_advert_but_light_local_stays_home(self):
        g = make_grid(SymmetricScheduler)
        s0, s1 = g.schedulers
        s1.start_volunteering()
        g.sim.run(until=s1.volunteer_interval + 5.0)
        job = make_job(execution=900.0, job_class=JobClass.REMOTE)
        g.submit(job, cluster=0)  # local is idle
        g.sim.run(until=3000.0)
        assert job.executed_cluster == 0
        assert s0.advert_placements == 1

    def test_stale_adverts_expire(self):
        g = make_grid(SymmetricScheduler)
        s0, s1 = g.schedulers
        s0._adverts.append((s1, 0.0))
        g.sim.run(until=s0.advert_ttl + 1.0)
        assert s0._fresh_advertiser() is None

    def test_answers_polls_like_si(self):
        g = make_grid(SymmetricScheduler)
        s0, s1 = g.schedulers
        got = []
        s0.on_poll_reply = lambda m: got.append(m.payload)
        s1.deliver(
            Message(
                MessageKind.POLL_REQUEST,
                payload={"job_id": 5, "demand": 100.0, "reply_to": s0},
            )
        )
        g.sim.run()
        assert got and {"awt", "ert", "rus"} <= set(got[0])

    def test_both_planes_active_means_both_costs(self):
        """Sy-I with volunteering on AND no adverts at arrival pays for
        volunteering and polling — the hybrid's double overhead."""
        g = make_grid(SymmetricScheduler)
        s0, s1 = g.schedulers
        s0.start_volunteering()
        s1.start_volunteering()
        mark_cluster_loaded(s1, load=3.0)  # s1 won't volunteer
        job = make_job(execution=900.0, job_class=JobClass.REMOTE)
        g.submit(job, cluster=0, at=1.0)
        g.sim.run(until=s0.volunteer_interval * 2)
        assert s0.fallback_polls == 1
        assert s0.volunteers_sent >= 1
