"""Tests for the enabler tuner and the end-to-end measurement procedure,
using an analytic toy system instead of the full grid simulation."""

import pytest

from repro.core import (
    AnnealingSchedule,
    EfficiencyRecord,
    Enabler,
    EnablerSpace,
    EnablerTuner,
    ScalabilityProcedure,
    ScalingPath,
)


class ToyObservation:
    """Observation built from closed-form F/G/H."""

    def __init__(self, F, G, H, success=1.0):
        self.record = EfficiencyRecord(F=F, G=G, H=H)
        self.success_rate = success


def toy_system(k, settings):
    """An analytic managed system.

    tau (update interval) trades overhead for success: overhead rate is
    ``k * 100 / tau``; success falls once tau exceeds 40.  Useful work
    is proportional to k times success.  Efficiency therefore moves
    with tau, and a unique tau region satisfies any given band.
    """
    tau = settings["tau"]
    success = 1.0 if tau <= 40 else max(0.0, 1.0 - (tau - 40) / 80.0)
    F = 100.0 * k * success
    G = 100.0 * k * (10.0 / tau) * 14.0  # = 14000k/tau... calibrated below
    G = 140.0 * k * (10.0 / tau)
    H = 5.0 * k
    return ToyObservation(F, G, H, success)


def space():
    return EnablerSpace(
        [Enabler("tau", (5.0, 10.0, 20.0, 40.0, 80.0), default_index=1)]
    )


# With tau=10: G=140k, F=100k, H=5k -> E = 100/245 = 0.408 (in band).
# With tau=20: G=70k -> E = 100/175 = 0.571 (too efficient: outside band).
# With tau=5: G=280k -> E = 0.26 (below band).


class TestEnablerTuner:
    def make_tuner(self, **kw):
        kw.setdefault("schedule", AnnealingSchedule(iterations=30, t0=0.5))
        kw.setdefault("seed", 1)
        return EnablerTuner(toy_system, space(), **kw)

    def test_validation(self):
        with pytest.raises(ValueError):
            EnablerTuner(toy_system, space(), e_tol=0.0)
        with pytest.raises(ValueError):
            EnablerTuner(toy_system, space(), success_floor=0.0)

    def test_base_tuning_lands_in_band(self):
        point = self.make_tuner().tune_base(1.0)
        assert point.feasible
        assert 0.36 <= point.efficiency <= 0.44
        assert point.settings["tau"] == 10.0  # the only in-band grid point

    def test_tune_holds_e0_at_higher_scale(self):
        tuner = self.make_tuner()
        base = tuner.tune_base(1.0)
        point = tuner.tune(3.0, base.efficiency)
        assert point.feasible
        assert point.efficiency == pytest.approx(base.efficiency, abs=0.02)
        # toy system is exactly proportional: G(3) = 3 * G(1)
        assert point.G == pytest.approx(3 * base.G, rel=0.01)

    def test_infeasible_marked(self):
        """With an absurd efficiency target nothing in the grid works."""
        tuner = self.make_tuner()
        point = tuner.tune(1.0, 0.05)
        assert not point.feasible

    def test_cache_avoids_recomputation(self):
        calls = []

        def counting(k, settings):
            calls.append((k, settings["tau"]))
            return toy_system(k, settings)

        tuner = EnablerTuner(
            counting,
            space(),
            schedule=AnnealingSchedule(iterations=50, t0=0.5),
            seed=0,
        )
        tuner.tune_base(1.0)
        # The grid only has 5 points; 51 evaluations must hit the cache.
        assert len(calls) <= 5
        assert tuner.evaluations == len(calls)

    def test_success_floor_excludes_lazy_settings(self):
        """tau=80 halves success; even though its G is the global
        minimum the floor must keep it infeasible."""
        tuner = self.make_tuner(success_floor=0.9)
        obs = toy_system(1.0, {"tau": 80.0})
        assert obs.success_rate == 0.5
        point = tuner.tune_base(1.0)
        assert point.settings["tau"] != 80.0

    def test_tune_rejects_bad_e0(self):
        with pytest.raises(ValueError):
            self.make_tuner().tune(1.0, 1.5)

    def test_tune_base_rejects_bad_band(self):
        with pytest.raises(ValueError):
            self.make_tuner().tune_base(1.0, band=(0.5, 0.4))


class TestScalabilityProcedure:
    def run_procedure(self, system=toy_system, scales=(1, 2, 3)):
        proc = ScalabilityProcedure(
            system,
            space(),
            path=ScalingPath(scales),
            schedule=AnnealingSchedule(iterations=25, t0=0.5),
            seed=2,
        )
        return proc.run(name="TOY")

    def test_full_run_shape(self):
        res = self.run_procedure()
        assert res.name == "TOY"
        assert res.scales == (1, 2, 3)
        assert len(res.points) == 3
        assert res.base_feasible
        assert len(res.slopes.g_slopes) == 2
        assert len(res.eq2_ok) == 3

    def test_proportional_system_is_scalable_everywhere(self):
        res = self.run_procedure()
        assert all(res.eq2_ok)
        assert all(res.slopes.scalable)
        assert res.feasible_through == 3

    def test_g_curve_roughly_linear(self):
        res = self.run_procedure()
        g = res.G
        assert g[1] == pytest.approx(2 * g[0], rel=0.05)
        assert g[2] == pytest.approx(3 * g[0], rel=0.05)

    def test_unscalable_system_detected(self):
        """A system whose overhead grows quadratically while work grows
        linearly must fail Eq. 2 and the slope test at high scale."""

        def central_like(k, settings):
            tau = settings["tau"]
            # Staleness compounds with scale: stretching tau to dodge the
            # quadratic overhead destroys delivered work instead.
            stale = tau * k
            success = 1.0 if stale <= 60 else max(0.0, 1.0 - (stale - 60) / 200.0)
            F = 100.0 * k * success
            G = 140.0 * (10.0 / tau) * k * k  # superlinear overhead
            H = 5.0 * k
            return ToyObservation(F, G, H, success)

        res = self.run_procedure(system=central_like, scales=(1, 2, 4))
        assert not all(res.eq2_ok)
        assert not all(res.slopes.scalable)
        assert res.slopes.scalable_through < 4

    def test_efficiencies_tracked_per_scale(self):
        res = self.run_procedure()
        assert len(res.efficiencies) == 3
        assert all(0.0 < e < 1.0 for e in res.efficiencies)
