"""The perf-regression watchdog's comparison logic, on synthetic
bench records (no simulations run here)."""

import pytest

from repro.experiments.benchcheck import (
    CheckResult,
    compare_bench,
    load_baseline,
    render_checks,
    worst_status,
)


def record(**overrides):
    """A minimal, internally consistent bench-perf payload."""
    payload = {
        "schema": 1,
        "profile": "ci",
        "case": 1,
        "seed": 7,
        "sa_iterations": 10,
        "rms": ["CENTRAL", "LOWEST"],
        "kernel": {"events": 200_000, "seconds": 0.5, "events_per_sec": 400_000.0},
        "sims": {"rms": "CENTRAL", "runs": 3, "seconds": 0.2, "sims_per_sec": 15.0},
        "fluid": {
            "overlap": {
                "rms": "LOWEST",
                "n_resources": 500,
                "n_schedulers": 4,
                "n_estimators": 63,
                "horizon": 3000.0,
                "discrete": {"kernel_events": 50_000, "seconds": 5.0},
                "fluid": {"kernel_events": 900, "seconds": 0.8},
                "event_reduction": 55.6,
                "speedup": 6.25,
                "F_identical": True,
                "G_delta_pct": 0.8,
                "H_delta_pct": 0.0,
            },
            "extreme": {
                "profile": "extreme",
                "scale": 4.0,
                "n_resources": 100_000,
                "n_schedulers": 128,
                "fluid": {"kernel_events": 2_991, "seconds": 130.0},
                "success_rate": 0.578,
                "G": 18_397_365.0,
                "discrete_events_projected": 2_500_000_000,
                "event_reduction_vs_discrete": 835_841.5,
            },
        },
        "study": {
            "baseline": {
                "jobs": 1,
                "warm_start": False,
                "speculation": 0,
                "seconds": 100.0,
                "simulations": 400,
            },
            "arms": [
                {
                    "jobs": 4,
                    "warm_start": True,
                    "speculation": 4,
                    "seconds": 50.0,
                    "simulations": 276,
                    "evaluations_by_scale": {"1": 140, "2": 74},
                    "tuned": {"CENTRAL": [{"update_interval": 40.0}]},
                }
            ],
            "tuned_points_identical_across_jobs": True,
        },
    }
    payload.update(overrides)
    return payload


def by_metric(checks):
    return {c.metric: c for c in checks}


class TestCompare:
    def test_identity_passes_everything(self):
        checks = compare_bench(record(), record())
        assert worst_status(checks) == "pass"
        assert all(c.status == "pass" for c in checks)

    def test_small_timing_regression_passes(self):
        cur = record()
        cur["kernel"] = dict(cur["kernel"], events_per_sec=380_000.0)  # -5%
        checks = compare_bench(record(), cur)
        assert by_metric(checks)["kernel.events_per_sec"].status == "pass"

    def test_timing_regression_warns_beyond_warn_tolerance(self):
        cur = record()
        cur["kernel"] = dict(cur["kernel"], events_per_sec=340_000.0)  # -15%
        checks = compare_bench(record(), cur)
        check = by_metric(checks)["kernel.events_per_sec"]
        assert check.status == "warn"
        assert "slower" in check.detail

    def test_timing_regression_fails_beyond_fail_tolerance(self):
        cur = record()
        cur["kernel"] = dict(cur["kernel"], events_per_sec=280_000.0)  # -30%
        checks = compare_bench(record(), cur)
        assert by_metric(checks)["kernel.events_per_sec"].status == "fail"
        assert worst_status(checks) == "fail"

    def test_improvement_never_warns(self):
        cur = record()
        cur["kernel"] = dict(cur["kernel"], events_per_sec=800_000.0)  # 2x faster
        cur["study"] = dict(cur["study"])
        cur["study"]["baseline"] = dict(cur["study"]["baseline"], seconds=10.0)
        checks = compare_bench(record(), cur)
        assert worst_status(checks) == "pass"

    def test_wall_clock_direction_is_lower_is_better(self):
        cur = record()
        cur["study"] = dict(cur["study"])
        cur["study"]["baseline"] = dict(cur["study"]["baseline"], seconds=140.0)  # +40%
        checks = compare_bench(record(), cur)
        assert by_metric(checks)["study.baseline.seconds"].status == "fail"

    def test_count_drift_always_fails(self):
        cur = record()
        cur["study"] = dict(cur["study"])
        cur["study"]["baseline"] = dict(cur["study"]["baseline"], simulations=401)
        checks = compare_bench(record(), cur)
        check = by_metric(checks)["study.baseline.simulations"]
        assert check.status == "fail"
        assert "behavior changed" in check.detail

    def test_tuned_drift_fails(self):
        cur = record()
        cur["study"] = dict(cur["study"])
        cur["study"]["arms"] = [
            dict(cur["study"]["arms"][0], tuned={"CENTRAL": [{"update_interval": 80.0}]})
        ]
        checks = compare_bench(record(), cur)
        assert by_metric(checks)["study.arm[jobs=4].tuned"].status == "fail"

    def test_cross_worker_identity_flag_checked(self):
        cur = record()
        cur["study"] = dict(cur["study"], tuned_points_identical_across_jobs=False)
        checks = compare_bench(record(), cur)
        assert (
            by_metric(checks)["study.tuned_points_identical_across_jobs"].status
            == "fail"
        )

    def test_different_kernel_budget_skips(self):
        cur = record()
        cur["kernel"] = {"events": 50_000, "events_per_sec": 100_000.0}
        checks = compare_bench(record(), cur)
        assert by_metric(checks)["kernel.events_per_sec"].status == "skip"

    def test_different_study_params_skip_study_sections(self):
        cur = record(rms=["LOWEST"])
        cur["sims"] = dict(cur["sims"])
        checks = compare_bench(record(), cur)
        metrics = by_metric(checks)
        assert metrics["study"].status == "skip"
        assert "study.baseline.seconds" not in metrics

    def test_missing_arm_skips(self):
        cur = record()
        cur["study"] = dict(cur["study"], arms=[])
        checks = compare_bench(record(), cur)
        assert by_metric(checks)["study.arm[jobs=4]"].status == "skip"

    def test_degenerate_timing_skips(self):
        cur = record()
        cur["kernel"] = dict(cur["kernel"], events_per_sec=0.0)
        checks = compare_bench(record(), cur)
        assert by_metric(checks)["kernel.events_per_sec"].status == "skip"

    def test_tolerances_validated(self):
        with pytest.raises(ValueError):
            compare_bench(record(), record(), warn_tolerance=0.3, fail_tolerance=0.1)
        with pytest.raises(ValueError):
            compare_bench(record(), record(), warn_tolerance=0.0)


class TestRender:
    def test_report_lines_and_verdict(self):
        cur = record()
        cur["kernel"] = dict(cur["kernel"], events_per_sec=280_000.0)
        checks = compare_bench(record(), cur)
        out = render_checks(checks, 0.10, 0.25)
        assert "[FAIL] kernel.events_per_sec" in out
        assert out.endswith("verdict: FAIL")

    def test_warn_only_notes_unenforced_exit(self):
        checks = [CheckResult("x", "fail", "d")]
        out = render_checks(checks, 0.10, 0.25, warn_only=True)
        assert "--warn-only" in out

    def test_skips_do_not_worsen_verdict(self):
        checks = [CheckResult("a", "pass", "d"), CheckResult("b", "skip", "d")]
        assert worst_status(checks) == "pass"


class TestLoadBaseline:
    def test_rejects_non_bench_payload(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text("{}")
        with pytest.raises(ValueError):
            load_baseline(path)

    def test_loads_valid_payload(self, tmp_path):
        import json

        path = tmp_path / "BENCH_perf.json"
        path.write_text(json.dumps(record()))
        assert load_baseline(path)["profile"] == "ci"


class TestFluidSection:
    """Satellite contract: a baseline that predates the fluid section
    skips it (and suppresses the extreme-scale run) instead of failing."""

    def test_identity_passes_fluid_checks(self):
        checks = by_metric(compare_bench(record(), record()))
        assert checks["fluid.overlap.F_identical"].status == "pass"
        assert checks["fluid.overlap.kernel_events"].status == "pass"
        assert checks["fluid.extreme.kernel_events"].status == "pass"

    def test_pre_fluid_baseline_skips_not_fails(self):
        baseline = record()
        del baseline["fluid"]
        current = record()
        checks = by_metric(compare_bench(baseline, current))
        assert checks["fluid"].status == "skip"
        assert "baseline" in checks["fluid"].detail
        assert worst_status(compare_bench(baseline, current)) == "pass"

    def test_current_without_fluid_section_skips(self):
        current = record()
        del current["fluid"]
        checks = by_metric(compare_bench(record(), current))
        assert checks["fluid"].status == "skip"

    def test_overlap_param_drift_skips_comparison(self):
        current = record()
        current["fluid"] = dict(current["fluid"])
        current["fluid"]["overlap"] = dict(
            current["fluid"]["overlap"], n_resources=2000
        )
        checks = by_metric(compare_bench(record(), current))
        assert checks["fluid.overlap"].status == "skip"
        assert "fluid.overlap.F_identical" not in checks

    def test_f_divergence_fails(self):
        current = record()
        current["fluid"] = dict(current["fluid"])
        current["fluid"]["overlap"] = dict(
            current["fluid"]["overlap"], F_identical=False
        )
        checks = by_metric(compare_bench(record(), current))
        assert checks["fluid.overlap.F_identical"].status == "fail"

    def test_kernel_event_drift_fails(self):
        current = record()
        current["fluid"] = dict(current["fluid"])
        current["fluid"]["extreme"] = dict(current["fluid"]["extreme"])
        current["fluid"]["extreme"]["fluid"] = dict(
            current["fluid"]["extreme"]["fluid"], kernel_events=3_100
        )
        checks = by_metric(compare_bench(record(), current))
        assert checks["fluid.extreme.kernel_events"].status == "fail"

    def test_event_reduction_regression_warns_or_fails(self):
        current = record()
        current["fluid"] = dict(current["fluid"])
        current["fluid"]["extreme"] = dict(
            current["fluid"]["extreme"], event_reduction_vs_discrete=500_000.0
        )
        checks = by_metric(compare_bench(record(), current))
        assert checks["fluid.extreme.event_reduction_vs_discrete"].status in (
            "warn",
            "fail",
        )
