"""The perf-regression watchdog's comparison logic, on synthetic
bench records (no simulations run here)."""

import pytest

from repro.experiments.benchcheck import (
    CheckResult,
    compare_bench,
    load_baseline,
    render_checks,
    worst_status,
)


def record(**overrides):
    """A minimal, internally consistent bench-perf payload."""
    payload = {
        "schema": 1,
        "profile": "ci",
        "case": 1,
        "seed": 7,
        "sa_iterations": 10,
        "rms": ["CENTRAL", "LOWEST"],
        "kernel": {"events": 200_000, "seconds": 0.5, "events_per_sec": 400_000.0},
        "sims": {"rms": "CENTRAL", "runs": 3, "seconds": 0.2, "sims_per_sec": 15.0},
        "study": {
            "baseline": {
                "jobs": 1,
                "warm_start": False,
                "speculation": 0,
                "seconds": 100.0,
                "simulations": 400,
            },
            "arms": [
                {
                    "jobs": 4,
                    "warm_start": True,
                    "speculation": 4,
                    "seconds": 50.0,
                    "simulations": 276,
                    "evaluations_by_scale": {"1": 140, "2": 74},
                    "tuned": {"CENTRAL": [{"update_interval": 40.0}]},
                }
            ],
            "tuned_points_identical_across_jobs": True,
        },
    }
    payload.update(overrides)
    return payload


def by_metric(checks):
    return {c.metric: c for c in checks}


class TestCompare:
    def test_identity_passes_everything(self):
        checks = compare_bench(record(), record())
        assert worst_status(checks) == "pass"
        assert all(c.status == "pass" for c in checks)

    def test_small_timing_regression_passes(self):
        cur = record()
        cur["kernel"] = dict(cur["kernel"], events_per_sec=380_000.0)  # -5%
        checks = compare_bench(record(), cur)
        assert by_metric(checks)["kernel.events_per_sec"].status == "pass"

    def test_timing_regression_warns_beyond_warn_tolerance(self):
        cur = record()
        cur["kernel"] = dict(cur["kernel"], events_per_sec=340_000.0)  # -15%
        checks = compare_bench(record(), cur)
        check = by_metric(checks)["kernel.events_per_sec"]
        assert check.status == "warn"
        assert "slower" in check.detail

    def test_timing_regression_fails_beyond_fail_tolerance(self):
        cur = record()
        cur["kernel"] = dict(cur["kernel"], events_per_sec=280_000.0)  # -30%
        checks = compare_bench(record(), cur)
        assert by_metric(checks)["kernel.events_per_sec"].status == "fail"
        assert worst_status(checks) == "fail"

    def test_improvement_never_warns(self):
        cur = record()
        cur["kernel"] = dict(cur["kernel"], events_per_sec=800_000.0)  # 2x faster
        cur["study"] = dict(cur["study"])
        cur["study"]["baseline"] = dict(cur["study"]["baseline"], seconds=10.0)
        checks = compare_bench(record(), cur)
        assert worst_status(checks) == "pass"

    def test_wall_clock_direction_is_lower_is_better(self):
        cur = record()
        cur["study"] = dict(cur["study"])
        cur["study"]["baseline"] = dict(cur["study"]["baseline"], seconds=140.0)  # +40%
        checks = compare_bench(record(), cur)
        assert by_metric(checks)["study.baseline.seconds"].status == "fail"

    def test_count_drift_always_fails(self):
        cur = record()
        cur["study"] = dict(cur["study"])
        cur["study"]["baseline"] = dict(cur["study"]["baseline"], simulations=401)
        checks = compare_bench(record(), cur)
        check = by_metric(checks)["study.baseline.simulations"]
        assert check.status == "fail"
        assert "behavior changed" in check.detail

    def test_tuned_drift_fails(self):
        cur = record()
        cur["study"] = dict(cur["study"])
        cur["study"]["arms"] = [
            dict(cur["study"]["arms"][0], tuned={"CENTRAL": [{"update_interval": 80.0}]})
        ]
        checks = compare_bench(record(), cur)
        assert by_metric(checks)["study.arm[jobs=4].tuned"].status == "fail"

    def test_cross_worker_identity_flag_checked(self):
        cur = record()
        cur["study"] = dict(cur["study"], tuned_points_identical_across_jobs=False)
        checks = compare_bench(record(), cur)
        assert (
            by_metric(checks)["study.tuned_points_identical_across_jobs"].status
            == "fail"
        )

    def test_different_kernel_budget_skips(self):
        cur = record()
        cur["kernel"] = {"events": 50_000, "events_per_sec": 100_000.0}
        checks = compare_bench(record(), cur)
        assert by_metric(checks)["kernel.events_per_sec"].status == "skip"

    def test_different_study_params_skip_study_sections(self):
        cur = record(rms=["LOWEST"])
        cur["sims"] = dict(cur["sims"])
        checks = compare_bench(record(), cur)
        metrics = by_metric(checks)
        assert metrics["study"].status == "skip"
        assert "study.baseline.seconds" not in metrics

    def test_missing_arm_skips(self):
        cur = record()
        cur["study"] = dict(cur["study"], arms=[])
        checks = compare_bench(record(), cur)
        assert by_metric(checks)["study.arm[jobs=4]"].status == "skip"

    def test_degenerate_timing_skips(self):
        cur = record()
        cur["kernel"] = dict(cur["kernel"], events_per_sec=0.0)
        checks = compare_bench(record(), cur)
        assert by_metric(checks)["kernel.events_per_sec"].status == "skip"

    def test_tolerances_validated(self):
        with pytest.raises(ValueError):
            compare_bench(record(), record(), warn_tolerance=0.3, fail_tolerance=0.1)
        with pytest.raises(ValueError):
            compare_bench(record(), record(), warn_tolerance=0.0)


class TestRender:
    def test_report_lines_and_verdict(self):
        cur = record()
        cur["kernel"] = dict(cur["kernel"], events_per_sec=280_000.0)
        checks = compare_bench(record(), cur)
        out = render_checks(checks, 0.10, 0.25)
        assert "[FAIL] kernel.events_per_sec" in out
        assert out.endswith("verdict: FAIL")

    def test_warn_only_notes_unenforced_exit(self):
        checks = [CheckResult("x", "fail", "d")]
        out = render_checks(checks, 0.10, 0.25, warn_only=True)
        assert "--warn-only" in out

    def test_skips_do_not_worsen_verdict(self):
        checks = [CheckResult("a", "pass", "d"), CheckResult("b", "skip", "d")]
        assert worst_status(checks) == "pass"


class TestLoadBaseline:
    def test_rejects_non_bench_payload(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text("{}")
        with pytest.raises(ValueError):
            load_baseline(path)

    def test_loads_valid_payload(self, tmp_path):
        import json

        path = tmp_path / "BENCH_perf.json"
        path.write_text(json.dumps(record()))
        assert load_baseline(path)["profile"] == "ci"
