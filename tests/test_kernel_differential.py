"""Differential tests: the fast kernel backend vs the reference.

Two layers of evidence that the backends are interchangeable:

1. **Property-based lockstep execution** — hypothesis generates random
   kernel programs (schedule / schedule_at / cancel / run / step /
   pop_until / peek, including reentrant scheduling from inside
   handlers) and drives them through every registered backend
   simultaneously, asserting identical observable traces: the executed
   event stream, the clock, ``events_executed`` and ``pending`` after
   every operation.  On a mismatch the failing program is written to
   ``kernel-differential-failure.json`` (path overridable via
   ``REPRO_DIFF_ARTIFACT``) so CI can upload it as an artifact and the
   failure replays without hypothesis.

2. **Full-study differential** — real simulations (two RMS designs,
   inert and churny fault plans) must produce *bit-identical*
   F/G/H metrics, attribution cells, and cache keys on every backend,
   serially and through the parallel engine at ``jobs=1`` vs ``jobs=4``.
"""

from __future__ import annotations

import json
import os
from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.cases import ScaleProfile, get_case
from repro.experiments.parallel.cache import metrics_json_bytes
from repro.experiments.parallel.engine import ExperimentEngine
from repro.experiments.parallel.hashing import config_key
from repro.experiments.runner import run_simulation
from repro.faults import CrashEvent, FaultPlan
from repro.sim.backend import backend_names, create_kernel
from repro.sim.kernel import SimulationError

ARTIFACT_PATH = os.environ.get("REPRO_DIFF_ARTIFACT", "kernel-differential-failure.json")


# ----------------------------------------------------------------------
# layer 1: random kernel programs through all backends in lockstep
# ----------------------------------------------------------------------

# Delays are drawn from a small pool so same-timestamp ties are common —
# tie-breaking is exactly where an ordering bug would hide.
_DELAYS = st.sampled_from([0.0, 0.25, 0.5, 1.0, 1.0, 2.0, 3.5])

_OP = st.one_of(
    st.tuples(st.just("schedule"), _DELAYS),
    st.tuples(st.just("schedule_spawner"), _DELAYS, _DELAYS),
    st.tuples(st.just("schedule_at"), _DELAYS),
    st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=10**6)),
    st.tuples(st.just("run_until"), _DELAYS),
    st.tuples(st.just("run_budget"), st.integers(min_value=0, max_value=4)),
    st.tuples(st.just("run_all")),
    st.tuples(st.just("step")),
    st.tuples(st.just("pop"), st.one_of(st.none(), _DELAYS)),
    st.tuples(st.just("peek")),
)

PROGRAMS = st.lists(_OP, min_size=1, max_size=40)


def run_program(backend: str, program) -> list:
    """Execute ``program`` on ``backend``; return its observable trace."""
    sim = create_kernel(backend)
    trace: list = []
    handles: list = []
    tag_counter = [0]

    def fire(tag):
        trace.append(("fire", sim.now, tag))

    def spawn(tag, child_delay):
        # reentrant: a handler scheduling more work mid-run
        trace.append(("spawn", sim.now, tag))
        tag_counter[0] += 1
        handles.append(sim.schedule(child_delay, fire, tag_counter[0]))

    for op in program:
        kind = op[0]
        try:
            if kind == "schedule":
                tag_counter[0] += 1
                handles.append(sim.schedule(op[1], fire, tag_counter[0]))
            elif kind == "schedule_spawner":
                tag_counter[0] += 1
                handles.append(sim.schedule(op[1], spawn, tag_counter[0], op[2]))
            elif kind == "schedule_at":
                tag_counter[0] += 1
                handles.append(sim.schedule_at(sim.now + op[1], fire, tag_counter[0]))
            elif kind == "cancel":
                if handles:
                    sim.cancel(handles[op[1] % len(handles)])
            elif kind == "run_until":
                sim.run(until=sim.now + op[1])
            elif kind == "run_budget":
                sim.run(max_events=op[1])
            elif kind == "run_all":
                sim.run()
            elif kind == "step":
                trace.append(("step", sim.step()))
            elif kind == "pop":
                limit = None if op[1] is None else sim.now + op[1]
                popped = sim.pop_until(limit)
                trace.append(
                    ("pop", None if popped is None else (popped[0], popped[2]))
                )
            elif kind == "peek":
                trace.append(("peek", sim.peek_time()))
        except SimulationError as exc:
            trace.append(("error", kind, type(exc).__name__))
        trace.append(("state", sim.now, sim.events_executed, sim.pending))
    # drain whatever is left so the full event stream is compared
    sim.run()
    trace.append(("final", sim.now, sim.events_executed, sim.pending))
    return trace


def _dump_artifact(program, traces) -> None:
    payload = {
        "program": [list(op) for op in program],
        "traces": {name: [list(map(repr, step)) for step in trace] for name, trace in traces.items()},
    }
    with open(ARTIFACT_PATH, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)


@settings(max_examples=80, deadline=None)
@given(program=PROGRAMS)
def test_backends_agree_on_random_programs(program):
    names = backend_names()
    traces = {name: run_program(name, program) for name in names}
    reference = traces["reference"]
    for name in names:
        if traces[name] != reference:
            _dump_artifact(program, traces)
            pytest.fail(
                f"backend {name!r} diverged from reference; "
                f"program written to {ARTIFACT_PATH}"
            )


@settings(max_examples=20, deadline=None)
@given(program=PROGRAMS)
def test_replay_is_deterministic_per_backend(program):
    # The same program run twice on the same backend must be identical —
    # rules out hidden global state inside a backend.
    for name in backend_names():
        assert run_program(name, program) == run_program(name, program)


# ----------------------------------------------------------------------
# layer 2: full simulations bit-identical across backends and job counts
# ----------------------------------------------------------------------

TINY = ScaleProfile(
    name="tiny-diff",
    base_resources=8,
    base_schedulers=4,
    fixed_resources=8,
    fixed_schedulers=4,
    base_rate_per_resource=0.00028,
    horizon=1500.0,
    drain=750.0,
    scales=(1, 2),
    sa_iterations=3,
)

INERT_PLAN = None
CHURN_PLAN = FaultPlan(
    resource_mttf=400.0,
    resource_mttr=60.0,
    churn_fraction=0.5,
    crashes=(CrashEvent(resource=1, at=300.0, duration=200.0),),
    heartbeat_timeout=45.0,
    heartbeat_interval=15.0,
)


def _configs(backend):
    case = get_case(1)
    return [
        case.config_for(rms, k, TINY, seed=7, faults=faults, kernel_backend=backend)
        for rms in ("CENTRAL", "LOWEST")
        for k in TINY.scales
        for faults in (INERT_PLAN, CHURN_PLAN)
    ]


class TestFullStudyDifferential:
    def test_bit_identical_metrics_across_backends(self):
        ref_cfgs = _configs("reference")
        fast_cfgs = _configs("fast")
        for ref_cfg, fast_cfg in zip(ref_cfgs, fast_cfgs):
            ref = run_simulation(ref_cfg)
            fast = run_simulation(fast_cfg)
            assert metrics_json_bytes(ref) == metrics_json_bytes(fast), (
                f"rms={ref_cfg.rms} n_resources={ref_cfg.n_resources} "
                f"faults={'churn' if ref_cfg.faults else 'inert'}"
            )
            # the bytes cover F/G/H and attribution, but assert the
            # headline numbers explicitly for a readable failure
            assert (ref.record.F, ref.record.G, ref.record.H) == (
                fast.record.F,
                fast.record.G,
                fast.record.H,
            )
            assert ref.attribution == fast.attribution

    def test_cache_keys_identical_across_backends(self):
        # The backend is provenance, not semantics: a cached result is
        # valid for every backend, so keys must not depend on it.
        for ref_cfg, fast_cfg in zip(_configs("reference"), _configs("fast")):
            assert config_key(ref_cfg) == config_key(fast_cfg)
            assert config_key(ref_cfg) == config_key(replace(ref_cfg, kernel_backend=None))

    def test_parallel_engine_jobs_invariant_on_fast_backend(self):
        # jobs=1 vs jobs=4 on the fast backend: worker processes must
        # reproduce the serial result byte for byte.
        cfgs = _configs("fast")
        serial = ExperimentEngine(jobs=1, cache=None).run_many(cfgs)
        parallel = ExperimentEngine(jobs=4, cache=None).run_many(cfgs)
        assert [metrics_json_bytes(m) for m in serial] == [
            metrics_json_bytes(m) for m in parallel
        ]

    def test_parallel_engine_backends_agree(self):
        ref = ExperimentEngine(jobs=4, cache=None).run_many(_configs("reference"))
        fast = ExperimentEngine(jobs=4, cache=None).run_many(_configs("fast"))
        assert [metrics_json_bytes(m) for m in ref] == [
            metrics_json_bytes(m) for m in fast
        ]
