"""Tests for the StatusTable (the manager's stale view)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid import StatusTable


class TestStatusTable:
    def test_initial_loads_zero(self):
        t = StatusTable([1, 2, 3])
        assert t.loads() == {1: 0.0, 2: 0.0, 3: 0.0}
        assert len(t) == 3
        assert 2 in t and 9 not in t

    def test_record_and_read(self):
        t = StatusTable([1, 2])
        t.record(1, 4.0, time=10.0)
        assert t.load_of(1) == 4.0
        assert t.load_of(2) == 0.0

    def test_stale_update_ignored(self):
        t = StatusTable([1])
        t.record(1, 5.0, time=10.0)
        t.record(1, 2.0, time=8.0)  # older observation arrives late
        assert t.load_of(1) == 5.0

    def test_equal_time_update_applies(self):
        t = StatusTable([1])
        t.record(1, 5.0, time=10.0)
        t.record(1, 2.0, time=10.0)
        assert t.load_of(1) == 2.0

    def test_untracked_resource_rejected(self):
        t = StatusTable([1])
        with pytest.raises(KeyError):
            t.record(9, 1.0, time=0.0)
        with pytest.raises(KeyError):
            t.bump(9)

    def test_bump_and_floor(self):
        t = StatusTable([1])
        t.bump(1, +1.0)
        t.bump(1, +1.0)
        assert t.load_of(1) == 2.0
        t.bump(1, -5.0)
        assert t.load_of(1) == 0.0  # floored at zero

    def test_least_loaded_picks_minimum(self):
        t = StatusTable([1, 2, 3])
        t.record(1, 3.0, 0.0)
        t.record(2, 1.0, 0.0)
        t.record(3, 2.0, 0.0)
        assert t.least_loaded() == (2, 1.0)

    def test_least_loaded_tie_breaks_lowest_id(self):
        t = StatusTable([5, 2, 8])
        assert t.least_loaded() == (2, 0.0)

    def test_least_loaded_empty(self):
        rid, load = StatusTable([]).least_loaded()
        assert rid is None and math.isinf(load)

    def test_average_and_min(self):
        t = StatusTable([1, 2])
        t.record(1, 4.0, 0.0)
        assert t.average_load() == 2.0
        assert t.min_load() == 0.0

    def test_average_empty_is_nan(self):
        assert math.isnan(StatusTable([]).average_load())


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=4),       # resource
            st.floats(min_value=0, max_value=100, allow_nan=False),  # load
            st.floats(min_value=0, max_value=1000, allow_nan=False),  # time
        ),
        max_size=50,
    )
)
def test_table_reflects_latest_observation(updates):
    """After any update sequence, each tracked load equals the
    max-timestamp observation for that resource (last-writer-wins with
    out-of-order drops)."""
    t = StatusTable(range(5))
    latest = {}
    for rid, load, time in updates:
        t.record(rid, load, time)
        if rid not in latest or time >= latest[rid][0]:
            latest[rid] = (time, load)
    for rid in range(5):
        expected = latest.get(rid, (None, 0.0))[1]
        assert t.load_of(rid) == expected
