"""Tests for statistics collectors."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Counter, SeriesRecorder, Tally, TimeWeighted


class TestCounter:
    def test_starts_at_zero(self):
        assert int(Counter("c")) == 0

    def test_increment(self):
        c = Counter("c")
        c.increment()
        c.increment(4)
        assert c.value == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("c").increment(-1)


class TestTally:
    def test_empty_statistics_are_nan(self):
        t = Tally("t")
        assert math.isnan(t.mean)
        assert math.isnan(t.variance)
        assert math.isnan(t.std)

    def test_single_observation(self):
        t = Tally("t")
        t.record(3.0)
        assert t.mean == 3.0
        assert t.min == 3.0 and t.max == 3.0
        assert math.isnan(t.variance)

    def test_known_values(self):
        t = Tally("t")
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]:
            t.record(x)
        assert t.mean == pytest.approx(5.0)
        assert t.variance == pytest.approx(32.0 / 7.0)
        assert t.total == pytest.approx(40.0)
        assert t.count == 8

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=2, max_size=200))
    def test_matches_numpy(self, xs):
        t = Tally("t")
        for x in xs:
            t.record(x)
        assert t.mean == pytest.approx(np.mean(xs), rel=1e-9, abs=1e-6)
        assert t.variance == pytest.approx(np.var(xs, ddof=1), rel=1e-7, abs=1e-5)
        assert t.min == min(xs)
        assert t.max == max(xs)


class TestTimeWeighted:
    def test_constant_signal(self):
        tw = TimeWeighted("q", time=0.0, value=3.0)
        assert tw.mean(10.0) == 3.0

    def test_step_signal(self):
        tw = TimeWeighted("q", time=0.0, value=0.0)
        tw.update(4.0, 2.0)   # 0 on [0,4), 2 on [4,10)
        assert tw.mean(10.0) == pytest.approx((0 * 4 + 2 * 6) / 10)
        assert tw.current == 2.0

    def test_multiple_steps(self):
        tw = TimeWeighted("q")
        tw.update(1.0, 1.0)
        tw.update(2.0, 5.0)
        tw.update(3.0, 0.0)
        # areas: 0*1 + 1*1 + 5*1 + 0*(t-3)
        assert tw.mean(4.0) == pytest.approx(6.0 / 4.0)

    def test_zero_span_returns_current(self):
        tw = TimeWeighted("q", time=5.0, value=7.0)
        assert tw.mean(5.0) == 7.0

    def test_time_must_be_nondecreasing(self):
        tw = TimeWeighted("q", time=5.0)
        with pytest.raises(ValueError):
            tw.update(4.0, 1.0)

    def test_repeated_updates_at_same_instant(self):
        tw = TimeWeighted("q")
        tw.update(1.0, 3.0)
        tw.update(1.0, 9.0)  # instantaneous change; 3.0 held for zero time
        assert tw.mean(2.0) == pytest.approx(9.0 / 2.0)


class TestSeriesRecorder:
    def test_records_pairs_in_order(self):
        s = SeriesRecorder("s")
        s.record(1.0, 10.0)
        s.record(2.0, 20.0)
        assert s.as_tuples() == [(1.0, 10.0), (2.0, 20.0)]
        assert len(s) == 2
