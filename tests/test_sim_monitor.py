"""Tests for statistics collectors."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Counter, SeriesRecorder, Tally, TimeWeighted


class TestCounter:
    def test_starts_at_zero(self):
        assert int(Counter("c")) == 0

    def test_increment(self):
        c = Counter("c")
        c.increment()
        c.increment(4)
        assert c.value == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("c").increment(-1)


class TestTally:
    def test_empty_statistics_are_nan(self):
        t = Tally("t")
        assert math.isnan(t.mean)
        assert math.isnan(t.variance)
        assert math.isnan(t.std)

    def test_single_observation(self):
        t = Tally("t")
        t.record(3.0)
        assert t.mean == 3.0
        assert t.min == 3.0 and t.max == 3.0
        assert math.isnan(t.variance)

    def test_single_sample_variance_and_std_are_nan(self):
        t = Tally("t")
        t.record(42.0)
        assert math.isnan(t.variance)
        assert math.isnan(t.std)
        assert t.count == 1 and t.total == 42.0

    def test_identical_samples_have_zero_variance(self):
        t = Tally("t")
        for _ in range(5):
            t.record(3.0)
        assert t.variance == 0.0
        assert t.std == 0.0

    def test_known_values(self):
        t = Tally("t")
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]:
            t.record(x)
        assert t.mean == pytest.approx(5.0)
        assert t.variance == pytest.approx(32.0 / 7.0)
        assert t.total == pytest.approx(40.0)
        assert t.count == 8

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=2, max_size=200))
    def test_matches_numpy(self, xs):
        t = Tally("t")
        for x in xs:
            t.record(x)
        assert t.mean == pytest.approx(np.mean(xs), rel=1e-9, abs=1e-6)
        assert t.variance == pytest.approx(np.var(xs, ddof=1), rel=1e-7, abs=1e-5)
        assert t.min == min(xs)
        assert t.max == max(xs)


class TestTimeWeighted:
    def test_constant_signal(self):
        tw = TimeWeighted("q", time=0.0, value=3.0)
        assert tw.mean(10.0) == 3.0

    def test_step_signal(self):
        tw = TimeWeighted("q", time=0.0, value=0.0)
        tw.update(4.0, 2.0)   # 0 on [0,4), 2 on [4,10)
        assert tw.mean(10.0) == pytest.approx((0 * 4 + 2 * 6) / 10)
        assert tw.current == 2.0

    def test_multiple_steps(self):
        tw = TimeWeighted("q")
        tw.update(1.0, 1.0)
        tw.update(2.0, 5.0)
        tw.update(3.0, 0.0)
        # areas: 0*1 + 1*1 + 5*1 + 0*(t-3)
        assert tw.mean(4.0) == pytest.approx(6.0 / 4.0)

    def test_zero_span_returns_current(self):
        tw = TimeWeighted("q", time=5.0, value=7.0)
        assert tw.mean(5.0) == 7.0

    def test_time_must_be_nondecreasing(self):
        tw = TimeWeighted("q", time=5.0)
        with pytest.raises(ValueError):
            tw.update(4.0, 1.0)

    def test_out_of_order_after_updates(self):
        tw = TimeWeighted("q")
        tw.update(3.0, 1.0)
        tw.update(7.0, 2.0)
        with pytest.raises(ValueError):
            tw.update(6.999, 0.0)
        # the rejected update must not have corrupted the integral
        assert tw.mean(10.0) == pytest.approx((1.0 * 4 + 2.0 * 3) / 10)

    def test_zero_duration_interval_contributes_nothing(self):
        tw = TimeWeighted("q")
        tw.update(2.0, 100.0)
        tw.update(2.0, 100.0)  # zero-duration re-assertion of the value
        tw.update(2.0, 1.0)
        assert tw.mean(4.0) == pytest.approx((0.0 * 2 + 1.0 * 2) / 4)

    def test_mean_before_start_returns_current(self):
        tw = TimeWeighted("q", time=5.0, value=2.0)
        assert tw.mean(3.0) == 2.0

    def test_repeated_updates_at_same_instant(self):
        tw = TimeWeighted("q")
        tw.update(1.0, 3.0)
        tw.update(1.0, 9.0)  # instantaneous change; 3.0 held for zero time
        assert tw.mean(2.0) == pytest.approx(9.0 / 2.0)


class TestSeriesRecorder:
    def test_records_pairs_in_order(self):
        s = SeriesRecorder("s")
        s.record(1.0, 10.0)
        s.record(2.0, 20.0)
        assert s.as_tuples() == [(1.0, 10.0), (2.0, 20.0)]
        assert len(s) == 2

    def test_unbounded_by_default(self):
        s = SeriesRecorder("s")
        for i in range(1000):
            s.record(float(i), float(i))
        assert len(s) == 1000 and s.stride == 1

    def test_max_points_validation(self):
        with pytest.raises(ValueError):
            SeriesRecorder("s", max_points=-1)
        with pytest.raises(ValueError):
            SeriesRecorder("s", max_points=1)

    def test_bounded_recorder_never_exceeds_max_points(self):
        s = SeriesRecorder("s", max_points=16)
        for i in range(10_000):
            s.record(float(i), float(i))
            assert len(s) <= 16

    def test_decimation_keeps_every_stride_th_sample(self):
        s = SeriesRecorder("s", max_points=8)
        for i in range(64):
            s.record(float(i), float(2 * i))
        # after decimations the retained times are exact multiples of the
        # stride, evenly thinned across the whole span
        assert s.stride > 1
        assert all(t % s.stride == 0 for t in s.times)
        assert s.times == sorted(s.times)
        assert s.times[0] == 0.0
        # values still correspond to their times (pairs never shear)
        assert all(v == 2 * t for t, v in s.as_tuples())

    def test_decimation_covers_full_span(self):
        s = SeriesRecorder("s", max_points=8)
        n = 1000
        for i in range(n):
            s.record(float(i), 0.0)
        # the newest retained point is within one stride of the end
        assert s.times[-1] >= n - 1 - s.stride
