"""Flight recorder: rings, bundles, ambient enablement, and the
guarantee that recording never changes simulation results."""

import json
import os

import pytest

from repro.core import CostLedger
from repro.core.ledger import Category
from repro.experiments import SimulationConfig, run_simulation
from repro.experiments.parallel.cache import metrics_json_bytes
from repro.telemetry import flightrec
from repro.telemetry.flightrec import FlightRecorder


def tiny_config(rms="LOWEST", **kw):
    kw.setdefault("n_schedulers", 3)
    kw.setdefault("n_resources", 9)
    kw.setdefault("workload_rate", 0.004)
    kw.setdefault("horizon", 2000.0)
    kw.setdefault("drain", 3000.0)
    kw.setdefault("update_interval", 20.0)
    return SimulationConfig(rms=rms, **kw)


@pytest.fixture(autouse=True)
def _clean_ambient(monkeypatch):
    """Each test starts with recording off and a fresh env check."""
    monkeypatch.delenv(flightrec.ENV_ENABLE, raising=False)
    monkeypatch.delenv(flightrec.ENV_DIR, raising=False)
    flightrec.disable()
    yield
    flightrec.disable()


class TestRings:
    def test_channels_are_bounded(self, tmp_path):
        rec = FlightRecorder(tmp_path, capacity=4)
        for i in range(10):
            rec.kernel_event(float(i), tiny_config, ())
            rec.ledger_charge("g.schedule", 1.0, None)
            rec.tuner_move("iteration", i=i)
        snap = rec.snapshot()
        assert len(snap["kernel"]) == 4
        assert len(snap["ledger"]) == 4
        assert len(snap["tuner"]) == 4
        # the window keeps the *latest* entries
        assert snap["kernel"][-1]["t"] == 9.0
        assert snap["tuner"][-1]["i"] == 9

    def test_capacity_validated(self, tmp_path):
        with pytest.raises(ValueError):
            FlightRecorder(tmp_path, capacity=0)

    def test_kernel_labels_resolved_at_dump_time(self, tmp_path):
        class Entity:
            name = "sched0"

            def poke(self):
                pass

        rec = FlightRecorder(tmp_path, capacity=4)
        rec.kernel_event(1.0, Entity().poke, ())
        label = rec.snapshot()["kernel"][0]["fn"]
        assert "poke" in label and "sched0" in label

    def test_observe_ledger_feeds_ring(self, tmp_path):
        rec = FlightRecorder(tmp_path, capacity=8)
        ledger = CostLedger()
        rec.observe_ledger(ledger)
        ledger.charge(Category.SCHEDULE, 2.5, ("scheduler", "sched0", "job_submit"))
        snap = rec.snapshot()
        assert snap["ledger"] == [
            {
                "category": "g.schedule",
                "amount": 2.5,
                "source": ["scheduler", "sched0", "job_submit"],
            }
        ]


class TestDump:
    def test_bundle_shape(self, tmp_path):
        rec = FlightRecorder(tmp_path)
        rec.note("run started", rms="LOWEST")
        try:
            raise RuntimeError("boom")
        except RuntimeError as exc:
            path = rec.dump("sim.exception", error=exc, context={"seed": 7})
        payload = json.loads(path.read_text())
        assert payload["schema"] == flightrec.BUNDLE_SCHEMA
        assert payload["reason"] == "sim.exception"
        assert payload["pid"] == os.getpid()
        assert payload["context"] == {"seed": 7}
        assert payload["channels"]["notes"][0]["note"] == "run started"
        assert payload["error"]["type"] == "RuntimeError"
        assert "boom" in payload["error"]["traceback"]
        assert rec.bundles == [path]

    def test_sequential_dumps_get_distinct_files(self, tmp_path):
        rec = FlightRecorder(tmp_path)
        first = rec.dump("sim.exception")
        second = rec.dump("run.cancelled")
        assert first != second
        assert json.loads(second.read_text())["reason"] == "run.cancelled"


class TestAmbient:
    def test_off_by_default(self):
        assert flightrec.current() is None

    def test_enable_disable(self, tmp_path):
        rec = flightrec.enable(tmp_path)
        assert flightrec.current() is rec
        flightrec.disable()
        assert flightrec.current() is None

    def test_env_enables(self, monkeypatch, tmp_path):
        monkeypatch.setenv(flightrec.ENV_ENABLE, "1")
        monkeypatch.setenv(flightrec.ENV_DIR, str(tmp_path))
        # force a fresh env consultation (it is memoized per process)
        flightrec._env_checked_pid = None
        rec = flightrec.current()
        assert rec is not None
        assert rec.directory == tmp_path
        assert flightrec.current() is rec  # stable within the process

    def test_env_zero_means_off(self, monkeypatch):
        monkeypatch.setenv(flightrec.ENV_ENABLE, "0")
        flightrec._env_checked_pid = None
        assert flightrec.current() is None


class TestRunnerIntegration:
    def test_crash_dumps_a_bundle(self, tmp_path, monkeypatch):
        from repro.experiments import runner

        flightrec.enable(tmp_path)

        def exploding_build(config):
            raise RuntimeError("wired to fail")

        monkeypatch.setattr(runner, "build_system", exploding_build)
        with pytest.raises(RuntimeError) as info:
            run_simulation(tiny_config())
        assert getattr(info.value, "_flightrec_dumped", False)
        bundles = sorted(tmp_path.glob("bundle-*.json"))
        assert len(bundles) == 1
        payload = json.loads(bundles[0].read_text())
        assert payload["reason"] == "sim.exception"
        assert payload["context"]["rms"] == "LOWEST"
        assert payload["error"]["type"] == "RuntimeError"

    def test_conservation_trip_dumps_invariant_bundle(self, tmp_path, monkeypatch):
        flightrec.enable(tmp_path)

        def tripped(self):
            raise RuntimeError("attribution conservation violated (forced)")

        monkeypatch.setattr(CostLedger, "check_conservation", tripped)
        with pytest.raises(RuntimeError) as info:
            run_simulation(tiny_config())
        assert getattr(info.value, "_flightrec_dumped", False)
        payloads = [
            json.loads(p.read_text()) for p in sorted(tmp_path.glob("bundle-*.json"))
        ]
        # exactly one bundle: the invariant dump, not a second generic one
        assert [p["reason"] for p in payloads] == ["invariant.conservation"]
        # the forensic window actually holds the run's observations
        assert payloads[0]["channels"]["kernel"]
        assert payloads[0]["channels"]["ledger"]

    def test_healthy_run_writes_nothing(self, tmp_path):
        flightrec.enable(tmp_path)
        run_simulation(tiny_config())
        assert list(tmp_path.glob("bundle-*.json")) == []

    def test_pool_worker_inherits_env_and_dumps_own_bundle(
        self, tmp_path, monkeypatch
    ):
        """Workers enable recording from the inherited environment and
        write PID-stamped bundles of their own."""
        from repro.experiments import runner
        from repro.experiments.parallel import ExperimentEngine, RunCache

        monkeypatch.setenv(flightrec.ENV_ENABLE, "1")
        monkeypatch.setenv(flightrec.ENV_DIR, str(tmp_path))

        def exploding_build(config):
            raise RuntimeError("worker crash")

        monkeypatch.setattr(runner, "build_system", exploding_build)
        cache = RunCache(root=tmp_path / "cache", read=False)
        with ExperimentEngine(jobs=2, cache=cache) as engine:
            with pytest.raises(RuntimeError):
                engine.run_many([tiny_config(seed=1), tiny_config(seed=2)])
        bundles = list(tmp_path.glob("bundle-*.json"))
        assert bundles, "worker crashes must leave post-mortem bundles"
        payload = json.loads(bundles[0].read_text())
        assert payload["reason"] == "sim.exception"
        assert payload["pid"] != os.getpid(), "bundle must come from a worker"

    def test_results_byte_identical_with_and_without_recorder(self, tmp_path):
        config = tiny_config(rms="CENTRAL")
        flightrec.disable()
        plain = metrics_json_bytes(run_simulation(config))
        flightrec.enable(tmp_path)
        recorded = metrics_json_bytes(run_simulation(config))
        assert plain == recorded
