"""Unit tests for the shared table renderer's number formatting.

The regression of note: nonzero floats whose fixed rendering rounds to
zero (phase shares like 3e-05 at the default precisions) used to print
a misleading ``0.000`` — they must switch to scientific notation — and
a negative zero must normalize to the positive form.
"""

import math

from repro.experiments.tabulate import format_table


def cell(value, precision=1):
    """Render one value through the table and return its cell text."""
    table = format_table(["v"], [[value]], precision=precision)
    return table.splitlines()[-1].strip()


class TestTinyFloats:
    def test_tiny_positive_switches_to_scientific(self):
        assert cell(3e-05, precision=3) == "3.000e-05"

    def test_tiny_negative_keeps_its_sign(self):
        assert cell(-3e-05, precision=3) == "-3.000e-05"

    def test_negative_zero_normalizes(self):
        assert cell(-0.0) == "0.0"
        assert cell(-1e-12, precision=1) == "-1.0e-12"

    def test_true_zero_stays_fixed(self):
        assert cell(0.0, precision=3) == "0.000"

    def test_ordinary_values_unchanged(self):
        assert cell(1.234, precision=2) == "1.23"
        assert cell(-0.5, precision=1) == "-0.5"

    def test_non_finite_values(self):
        assert cell(math.nan) == "nan"
        assert cell(math.inf) == "inf"
        assert cell(-math.inf) == "-inf"


class TestOtherTypes:
    def test_bools_render_yes_no(self):
        assert cell(True) == "yes"
        assert cell(False) == "no"

    def test_header_rule_matches_width(self):
        lines = format_table(["name"], [["abcdef"]]).splitlines()
        assert lines[1] == "-" * len(lines[2])
