"""Tests for replication statistics (mostly with a stub runner)."""

import math

import pytest

from repro.core.efficiency import EfficiencyRecord
from repro.experiments import SimulationConfig
from repro.experiments.replication import MetricSummary, replicate
from repro.experiments.runner import RunMetrics


def cfg(**kw):
    kw.setdefault("rms", "LOWEST")
    kw.setdefault("n_schedulers", 2)
    kw.setdefault("n_resources", 4)
    kw.setdefault("workload_rate", 0.002)
    kw.setdefault("horizon", 1000.0)
    return SimulationConfig(**kw)


def stub_metrics(seed):
    g = 100.0 + seed % 7
    return RunMetrics(
        record=EfficiencyRecord(F=200.0, G=g, H=2.0),
        jobs_submitted=10,
        jobs_completed=10,
        jobs_successful=9,
        mean_response=50.0 + seed % 3,
        throughput=0.009,
        messages_sent=40,
        scheduler_busy=g,
        horizon=1000.0,
    )


def stub_runner(config):
    return stub_metrics(config.seed)


class TestReplicate:
    def test_runs_n_distinct_seeds(self):
        res = replicate(cfg(seed=5), n=4, runner=stub_runner)
        assert len(res.runs) == 4
        assert len(set(res.seeds)) == 4
        assert res.seeds[0] == 5

    def test_explicit_seeds(self):
        res = replicate(cfg(), seeds=[1, 2, 3], runner=stub_runner)
        assert res.seeds == [1, 2, 3]
        assert len(res.runs) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            replicate(cfg(), n=0, runner=stub_runner)
        with pytest.raises(ValueError):
            replicate(cfg(), seeds=[], runner=stub_runner)

    def test_summary_math(self):
        res = replicate(cfg(), seeds=[0, 1, 2], runner=stub_runner)
        gs = [m.record.G for m in res.runs]
        s = res["G"]
        assert s.mean == pytest.approx(sum(gs) / 3)
        mean = s.mean
        var = sum((x - mean) ** 2 for x in gs) / 2
        assert s.std == pytest.approx(math.sqrt(var))
        assert s.sem == pytest.approx(s.std / math.sqrt(3))
        assert s.lo == pytest.approx(mean - 1.96 * s.sem)
        assert s.hi == pytest.approx(mean + 1.96 * s.sem)

    def test_single_replication_zero_spread(self):
        res = replicate(cfg(), n=1, runner=stub_runner)
        assert res["G"].std == 0.0
        assert res["G"].lo == res["G"].hi == res["G"].mean

    def test_contains(self):
        s = MetricSummary(name="x", mean=1.0, std=0.1, sem=0.05, lo=0.9, hi=1.1, n=4)
        assert s.contains(1.0)
        assert not s.contains(2.0)

    def test_all_standard_metrics_present(self):
        res = replicate(cfg(), n=2, runner=stub_runner)
        for name in ("efficiency", "G", "F", "H", "success_rate", "throughput", "mean_response"):
            assert name in res.summaries

    def test_custom_z(self):
        res = replicate(cfg(), seeds=[0, 1, 2], z=1.0, runner=stub_runner)
        s = res["G"]
        assert s.hi - s.mean == pytest.approx(s.sem)


class TestReplicateRealRuns:
    def test_real_replications_vary_but_agree(self):
        """Across real seeds the operating point is stable: success in a
        narrow band, intervals finite and ordered."""
        res = replicate(
            cfg(
                n_schedulers=3,
                n_resources=9,
                workload_rate=0.004,
                horizon=2000.0,
                drain=20000.0,
                update_interval=16.0,
            ),
            n=3,
        )
        s = res["efficiency"]
        assert 0.0 < s.lo <= s.mean <= s.hi < 1.0
        assert res["success_rate"].mean > 0.7
        # different seeds genuinely produce different samples
        assert len({m.record.G for m in res.runs}) > 1
