"""Tests for the Study driver plumbing (no heavy simulation: the
per-case measurement is stubbed)."""

import pytest

from repro.experiments.reproduce import Study

from test_experiments_reporting import fake_series


def stubbed_study(monkeypatch=None):
    study = Study(profile="ci", rms=["LOWEST", "CENTRAL"])
    calls = []

    def fake_measure(case, rms):
        calls.append((case.case_id, rms))
        return fake_series(rms)

    study._measure = fake_measure
    return study, calls


class TestStudy:
    def test_unknown_profile_rejected(self):
        with pytest.raises(KeyError):
            Study(profile="galactic")

    def test_default_rms_list_is_all_seven(self):
        assert len(Study().rms_list) == 7

    def test_sa_iterations_default_from_profile(self):
        s = Study(profile="ci")
        assert s.sa_iterations == s.profile.sa_iterations

    def test_run_case_measures_each_rms_once(self):
        study, calls = stubbed_study()
        study.run_case(1)
        assert calls == [(1, "LOWEST"), (1, "CENTRAL")]

    def test_run_case_memoized(self):
        study, calls = stubbed_study()
        study.run_case(2)
        study.run_case(2)
        assert len(calls) == 2  # not re-measured

    def test_figures_4_6_7_share_case3(self):
        study, calls = stubbed_study()
        study.figure(4)
        study.figure(6)
        study.figure(7)
        assert [c for c, _ in calls].count(3) == 2  # one pass over 2 RMSs

    def test_figure_metadata(self):
        study, _ = stubbed_study()
        fig = study.figure(5)
        assert fig.figure == "Figure 5"
        assert "L_p" in fig.title

    def test_bad_figure_number(self):
        study, _ = stubbed_study()
        with pytest.raises(ValueError):
            study.figure(1)
        with pytest.raises(ValueError):
            study.figure(8)

    def test_each_figure_maps_to_expected_case(self):
        mapping = {2: 1, 3: 2, 4: 3, 5: 4, 6: 3, 7: 3}
        for fig_no, case_id in mapping.items():
            study, calls = stubbed_study()
            study.figure(fig_no)
            assert calls[0][0] == case_id
