"""Property-based tests for the superscheduler decision rule."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rms import SenderInitiatedScheduler

from helpers import MiniGrid


def scheduler():
    g = MiniGrid(scheduler_cls=SenderInitiatedScheduler, n_clusters=2,
                 resources_per_cluster=1, use_middleware=True)
    return g.schedulers[0], g.schedulers[1]


CANDIDATE = st.tuples(
    st.floats(min_value=0, max_value=10_000, allow_nan=False),  # att
    st.floats(min_value=0, max_value=50, allow_nan=False),      # rus
)


@settings(max_examples=100, deadline=None)
@given(local=CANDIDATE, remotes=st.lists(CANDIDATE, max_size=5))
def test_choice_minimizes_att_up_to_psi(local, remotes):
    """The chosen candidate's ATT is within psi of the global minimum —
    never worse (the tolerance only widens the tie set)."""
    s, peer = scheduler()
    # distinct marker objects so each candidate is identity-unique
    candidates = [(None, local[0], local[1])]
    for att, rus in remotes:
        candidates.append((object(), att, rus))
    chosen = s.choose_by_att(100.0, candidates)
    chosen_att = next(att for c, att, _ in candidates if c is chosen)
    best_att = min(att for _, att, _ in candidates)
    assert chosen_att <= best_att + s.psi + 1e-9


@settings(max_examples=100, deadline=None)
@given(local=CANDIDATE, remotes=st.lists(CANDIDATE, min_size=1, max_size=5))
def test_tie_break_prefers_smallest_rus(local, remotes):
    """Among near-minimal candidates, the smallest RUS wins."""
    s, peer = scheduler()
    candidates = [(None, local[0], local[1])]
    for att, rus in remotes:
        candidates.append((object(), att, rus))
    chosen = s.choose_by_att(100.0, candidates)
    best_att = min(att for _, att, _ in candidates)
    near = [(c, att, rus) for c, att, rus in candidates if att <= best_att + s.psi]
    chosen_rus = next(rus for c, _, rus in candidates if c is chosen)
    assert chosen_rus == min(rus for _, _, rus in near)


@settings(max_examples=50, deadline=None)
@given(
    demand=st.floats(min_value=1, max_value=10_000),
    backlog=st.floats(min_value=0, max_value=20),
)
def test_att_monotone_in_backlog_and_demand(demand, backlog):
    """ATT grows with both the cluster backlog and the job demand."""
    s, _ = scheduler()
    for rid in s.table.loads():
        s.table.record(rid, backlog, 0.0)
    base = s.att(demand)
    for rid in s.table.loads():
        s.table.record(rid, backlog + 1.0, 1.0)
    assert s.att(demand) > base
    assert s.att(demand * 2) > s.att(demand)
