"""Property-based tests over the grid pipeline's end-to-end invariants.

Each property runs a miniature managed system under randomly drawn
(but bounded) parameters and checks invariants that must hold for ANY
configuration: job conservation, ledger consistency, non-negative
accounting, and response-time causality.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments import SimulationConfig, build_system, run_simulation, summarize
from repro.faults import FaultPlan
from repro.grid import JobState
from repro.rms import rms_names


CONFIG_STRATEGY = st.fixed_dictionaries(
    {
        "rms": st.sampled_from(rms_names()),
        "n_schedulers": st.integers(min_value=1, max_value=4),
        "cluster_size": st.integers(min_value=1, max_value=4),
        "rate_scale": st.floats(min_value=0.3, max_value=2.0),
        "update_interval": st.sampled_from([8.0, 16.0, 40.0]),
        "l_p": st.integers(min_value=0, max_value=3),
        "seed": st.integers(min_value=0, max_value=50),
    }
)


def build_config(params):
    n_res = params["n_schedulers"] * params["cluster_size"]
    return SimulationConfig(
        rms=params["rms"],
        n_schedulers=params["n_schedulers"],
        n_resources=n_res,
        workload_rate=max(1, n_res) * 0.00028 * params["rate_scale"],
        update_interval=params["update_interval"],
        l_p=params["l_p"],
        horizon=1500.0,
        drain=4000.0,
        seed=params["seed"],
    )


def drain_fully(system, cfg, max_extra=40):
    """Run past the horizon until every job completes.

    Unlike the runner's bounded drain (which deliberately truncates
    saturated runs), tests drive the system to quiescence: a correct
    protocol leaves every incomplete job inside the resource pipeline
    (PLACED or RUNNING), where service guarantees eventual completion —
    heavy-tailed runtimes just need more wall-clock.
    """
    system.sim.run(until=cfg.horizon)
    extra = 0
    while any(j.state != JobState.COMPLETED for j in system.jobs):
        # Invariant: nothing is stuck outside the pipeline for long;
        # park timeouts force WAITING jobs local well within one window.
        extra += 1
        assert extra <= max_extra, (
            "jobs failed to converge: "
            + str({j.job_id: j.state for j in system.jobs if j.state != JobState.COMPLETED})
        )
        system.sim.run(until=system.sim.now + 5000.0)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(params=CONFIG_STRATEGY)
def test_job_conservation_and_accounting(params):
    """For any configuration: every submitted job terminates, F only
    counts successful demand, and E is in (0, 1)."""
    cfg = build_config(params)
    system = build_system(cfg)
    drain_fully(system, cfg)
    m = summarize(system)

    # conservation
    assert m.jobs_completed == m.jobs_submitted == len(system.jobs)
    # F = exact sum of successful demands
    expected_F = sum(
        j.spec.execution_time for j in system.jobs if j.successful
    )
    assert m.record.F == pytest.approx(expected_F)
    # response-time causality: completion after arrival, service after
    # placement
    for j in system.jobs:
        assert j.completion_time >= j.spec.arrival_time
        assert j.start_service is not None
        assert j.completion_time >= j.start_service
        # single-hop migration policy: at most 1 transfer per job
        assert j.transfers <= 1
    # success consistency
    assert m.jobs_successful == sum(1 for j in system.jobs if j.successful)
    # ledger sanity
    assert m.record.G >= 0 and m.record.H > 0 or m.jobs_submitted == 0
    if m.jobs_submitted:
        assert 0.0 < m.efficiency < 1.0


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=20),
    rms=st.sampled_from(["LOWEST", "RESERVE", "Sy-I"]),
)
def test_loss_never_strands_jobs(seed, rms):
    """Control-plane loss at any rate must not strand a job."""
    cfg = SimulationConfig(
        rms=rms,
        n_schedulers=3,
        n_resources=6,
        workload_rate=0.003,
        update_interval=16.0,
        horizon=1500.0,
        drain=4000.0,
        faults=FaultPlan(link_loss=0.3),
        seed=seed,
    )
    system = build_system(cfg)
    drain_fully(system, cfg)
    m = summarize(system)
    assert m.jobs_completed == m.jobs_submitted
