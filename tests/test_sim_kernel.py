"""Tests for the discrete-event simulator core."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import SimulationError, Simulator


class TestScheduling:
    def test_initial_clock(self):
        assert Simulator().now == 0.0
        assert Simulator(start_time=5.0).now == 5.0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "late")
        sim.schedule(1.0, fired.append, "early")
        sim.schedule(3.0, fired.append, "mid")
        sim.run()
        assert fired == ["early", "mid", "late"]

    def test_ties_fire_in_scheduling_order(self):
        sim = Simulator()
        fired = []
        for tag in range(10):
            sim.schedule(1.0, fired.append, tag)
        sim.run()
        assert fired == list(range(10))

    def test_zero_delay_allowed(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.0, fired.append, 1)
        sim.run()
        assert fired == [1]
        assert sim.now == 0.0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_nan_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(float("nan"), lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator(start_time=10.0)
        fired = []
        sim.schedule_at(12.5, fired.append, "x")
        sim.run()
        assert fired == ["x"]
        assert sim.now == 12.5

    def test_schedule_at_past_rejected(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(9.0, lambda: None)

    def test_clock_advances_to_event_times(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.0, lambda: seen.append(sim.now))
        sim.schedule(7.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.0, 7.0]

    def test_events_can_schedule_events(self):
        sim = Simulator()
        fired = []

        def chain(n):
            fired.append((sim.now, n))
            if n > 0:
                sim.schedule(1.0, chain, n - 1)

        sim.schedule(0.0, chain, 3)
        sim.run()
        assert fired == [(0.0, 3), (1.0, 2), (2.0, 1), (3.0, 0)]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        ev = sim.schedule(1.0, fired.append, "no")
        sim.schedule(2.0, fired.append, "yes")
        sim.cancel(ev)
        sim.run()
        assert fired == ["yes"]

    def test_double_cancel_is_noop(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        sim.cancel(ev)
        sim.cancel(ev)  # must not corrupt live count
        assert sim.pending == 0
        sim.run()

    def test_cancel_from_within_event(self):
        sim = Simulator()
        fired = []
        victim = sim.schedule(5.0, fired.append, "victim")
        sim.schedule(1.0, lambda: sim.cancel(victim))
        sim.run()
        assert fired == []


class TestRunControl:
    def test_run_until_stops_and_advances_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(10.0, fired.append, "b")
        sim.run(until=5.0)
        assert fired == ["a"]
        assert sim.now == 5.0
        assert sim.pending == 1

    def test_run_until_is_inclusive(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "edge")
        sim.run(until=5.0)
        assert fired == ["edge"]

    def test_run_until_past_horizon_rejected(self):
        sim = Simulator(start_time=3.0)
        with pytest.raises(SimulationError):
            sim.run(until=2.0)

    def test_run_can_resume(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(6.0, fired.append, 2)
        sim.run(until=3.0)
        sim.run(until=10.0)
        assert fired == [1, 2]
        assert sim.now == 10.0

    def test_max_events_budget(self):
        sim = Simulator()

        def loop():
            sim.schedule(1.0, loop)

        sim.schedule(0.0, loop)
        sim.run(max_events=50)
        assert sim.events_executed == 50

    def test_step_returns_false_on_empty(self):
        sim = Simulator()
        assert sim.step() is False
        sim.schedule(1.0, lambda: None)
        assert sim.step() is True

    def test_events_executed_excludes_cancelled(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.cancel(ev)
        sim.run()
        assert sim.events_executed == 1

    def test_trace_hook(self):
        sim = Simulator()
        traced = []
        sim.trace = lambda t, fn, args: traced.append(t)
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert traced == [1.0, 2.0]


@settings(max_examples=100, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=1000, allow_nan=False), max_size=50))
def test_execution_times_nondecreasing(delays):
    """However events are scheduled up front, observed firing times are
    nondecreasing and match the multiset of requested times."""
    sim = Simulator()
    seen = []
    for d in delays:
        sim.schedule(d, lambda: seen.append(sim.now))
    sim.run()
    assert seen == sorted(delays)
