"""Fluid traffic mode: plan API, cross-validation against discrete
mode, the aggregator tree, and cache-key provenance.

The cross-validation contract (EXPERIMENTS.md "Extreme scale"): at
overlapping scales a fluid run must reproduce a discrete run's **F
bit-for-bit** (useful work is placement-level, and placements agree at
light load) and its **G and H within a documented ~5% tolerance** —
the residual comes from forwards reaching scheduler tables at flush
boundaries instead of their exact discrete instants.
"""

import math

import pytest

from repro.experiments import SimulationConfig, run_simulation
from repro.experiments.parallel.hashing import config_key
from repro.experiments.runner import build_system
from repro.fluid import (
    AggregatorTree,
    FluidPlan,
    FluidStatusPlane,
    fluid_plan_from_jsonable,
    fluid_plan_to_jsonable,
    resolve_fluid_plan,
)
from repro.rms.registry import rms_names

FLUID = FluidPlan(mode="fluid")

#: documented fluid-vs-discrete tolerance on G and H (fraction)
TOLERANCE = 0.05


def validation_config(rms="LOWEST", n_resources=16, **overrides):
    """The cross-validation shape: light load, ci-like clusters."""
    kwargs = dict(
        rms=rms,
        n_schedulers=4,
        n_resources=n_resources,
        workload_rate=n_resources * 0.00014,
        horizon=3000.0,
        drain=1500.0,
        seed=11,
    )
    kwargs.update(overrides)
    return SimulationConfig(**kwargs)


def _relerr(a: float, b: float) -> float:
    if a == 0.0:
        return 0.0 if b == 0.0 else math.inf
    return abs(b - a) / abs(a)


# ---------------------------------------------------------------------------
# The FluidPlan public API
# ---------------------------------------------------------------------------

class TestFluidPlan:
    def test_inert_by_default(self):
        plan = FluidPlan()
        assert plan.is_inert and not plan.is_fluid and not plan.has_tree

    def test_fluid_predicates(self):
        assert FLUID.is_fluid and not FLUID.is_inert and not FLUID.has_tree
        tree = FluidPlan(mode="fluid", aggregator_fanout=4)
        assert tree.has_tree

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            FluidPlan(mode="wavelet")
        with pytest.raises(ValueError):
            FluidPlan(mode="fluid", aggregator_fanout=1)
        with pytest.raises(ValueError):
            FluidPlan(mode="fluid", aggregator_fanout=-2)
        with pytest.raises(ValueError):
            FluidPlan(mode="fluid", flush_interval=0.0)

    def test_effective_flush_interval(self):
        assert FLUID.effective_flush_interval(20.0) == 20.0
        explicit = FluidPlan(mode="fluid", flush_interval=7.5)
        assert explicit.effective_flush_interval(20.0) == 7.5

    def test_jsonable_round_trip(self):
        plan = FluidPlan(mode="fluid", aggregator_fanout=8, flush_interval=12.0)
        assert fluid_plan_from_jsonable(fluid_plan_to_jsonable(plan)) == plan
        with pytest.raises(ValueError):
            fluid_plan_from_jsonable({"mode": "fluid", "bogus": 1})

    def test_resolve_args_beat_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRAFFIC_MODE", "fluid")
        assert resolve_fluid_plan(mode="discrete").is_inert
        assert resolve_fluid_plan().is_fluid
        monkeypatch.setenv("REPRO_TRAFFIC_MODE", "off")
        assert resolve_fluid_plan().is_inert
        monkeypatch.setenv("REPRO_TRAFFIC_MODE", "laminar")
        with pytest.raises(ValueError):
            resolve_fluid_plan()


# ---------------------------------------------------------------------------
# Cache-key provenance (mirrors the MonitorPlan conditional field)
# ---------------------------------------------------------------------------

class TestProvenance:
    def test_inert_plan_leaves_cache_key_unchanged(self):
        config = validation_config()
        assert config.fluid.is_inert
        explicit = validation_config(fluid=FluidPlan(mode="discrete"))
        assert config_key(config) == config_key(explicit)

    def test_fluid_plan_perturbs_cache_key(self):
        config = validation_config()
        fluid = validation_config(fluid=FLUID)
        tree = validation_config(fluid=FluidPlan(mode="fluid", aggregator_fanout=4))
        keys = {config_key(config), config_key(fluid), config_key(tree)}
        assert len(keys) == 3


# ---------------------------------------------------------------------------
# Cross-validation: fluid vs discrete at overlapping scale
# ---------------------------------------------------------------------------

class TestCrossValidation:
    @pytest.mark.parametrize("rms", rms_names())
    def test_f_identical_g_h_within_tolerance(self, rms):
        discrete = run_simulation(validation_config(rms))
        fluid = run_simulation(validation_config(rms, fluid=FLUID))
        assert fluid.record.F == discrete.record.F, "F must be bit-identical"
        assert _relerr(discrete.record.G, fluid.record.G) <= TOLERANCE
        assert _relerr(discrete.record.H, fluid.record.H) <= TOLERANCE
        assert fluid.jobs_submitted == discrete.jobs_submitted

    @pytest.mark.parametrize("rms", ["LOWEST", "S-I"])
    def test_tolerance_holds_at_larger_overlap(self, rms):
        # k=32 exercises the flush-boundary residual (the S-I cell is
        # the documented worst case, H within ~5%); CENTRAL is excluded
        # here by design — its placements are timing-sensitive at this
        # utilization, which EXPERIMENTS.md documents.
        discrete = run_simulation(validation_config(rms, n_resources=32))
        fluid = run_simulation(validation_config(rms, n_resources=32, fluid=FLUID))
        assert fluid.record.F == discrete.record.F
        assert _relerr(discrete.record.G, fluid.record.G) <= TOLERANCE
        assert _relerr(discrete.record.H, fluid.record.H) <= TOLERANCE

    def test_attribution_structure_preserved(self):
        discrete = run_simulation(validation_config("LOWEST"))
        fluid = run_simulation(validation_config("LOWEST", fluid=FLUID))
        d_attr, f_attr = discrete.attribution, fluid.attribution
        # Per (component, entity, message-class) attribution survives
        # the modeling: the fluid run charges the same estimator
        # status-update cells a discrete run does.
        d_cells = {k for k in d_attr if "|estimator|" in k and "status_update" in k}
        f_cells = {k for k in f_attr if "|estimator|" in k and "status_update" in k}
        assert f_cells == d_cells and d_cells

    def test_event_count_reduction(self):
        def events(config):
            system = build_system(config)
            system.sim.run(until=config.horizon + config.drain)
            return system.sim.events_executed

        d = events(validation_config("LOWEST", n_resources=64))
        f = events(validation_config("LOWEST", n_resources=64, fluid=FLUID))
        assert f * 10 <= d, f"expected >=10x fewer kernel events, got {d}/{f}"


# ---------------------------------------------------------------------------
# The aggregator tree
# ---------------------------------------------------------------------------

class TestAggregatorTree:
    def test_shape(self):
        tree = AggregatorTree(32, 4)
        assert tree.widths == (8, 2, 1)
        assert tree.depth == 3
        with pytest.raises(ValueError):
            AggregatorTree(4, 1)

    def test_merge_plan_counts_children(self):
        tree = AggregatorTree(8, 2)
        plan = tree.merge_plan([0, 1, 5])
        assert plan[0] == (1, {0: 2, 2: 1})
        assert plan[1] == (2, {0: 1, 1: 1})
        assert plan[2] == (3, {0: 2})
        assert tree.last_occupancy == (2, 2, 1)
        assert tree.occupancy_fraction() == 3 / 8

    def test_tree_mode_charges_aggregators(self):
        config = validation_config(
            "LOWEST", fluid=FluidPlan(mode="fluid", aggregator_fanout=2)
        )
        metrics = run_simulation(config)
        agg_cells = [k for k in metrics.attribution if "|agg1." in k]
        assert agg_cells, "aggregator levels must appear in the attribution"
        assert metrics.record.G > 0.0

    def test_tree_bounds_scheduler_forwards(self):
        # The tree pays off in the regime it exists for: many leaf
        # estimators (Case 3 scaling).  With 32 leaves over 4 clusters
        # the root forwards consolidated per-cluster state, so the
        # scheduler side sees far fewer deliveries than one per leaf
        # batch.
        def forwards(fluid_plan):
            system = build_system(
                validation_config(
                    "LOWEST",
                    n_resources=64,
                    n_estimators=32,
                    fluid=fluid_plan,
                )
            )
            system.sim.run(until=3000.0)
            return system.fluid.modeled_forwards

        flat = forwards(FLUID)
        tree = forwards(FluidPlan(mode="fluid", aggregator_fanout=4))
        assert tree * 2 <= flat, f"expected consolidated forwards, got {tree}/{flat}"


# ---------------------------------------------------------------------------
# O(1)/O(levels) probe taps (no per-leaf sweeps at extreme scale)
# ---------------------------------------------------------------------------

class TestProbeTaps:
    def test_flat_plane_taps(self):
        system = build_system(validation_config("LOWEST", fluid=FLUID))
        plane = system.fluid
        assert isinstance(plane, FluidStatusPlane)
        assert plane.aggregate_depth == 0
        system.sim.run(until=500.0)
        assert 0.0 <= plane.aggregate_occupancy() <= 1.0
        assert plane.pending_updates >= 0
        assert plane.total_load >= 0

    def test_tree_plane_taps(self):
        system = build_system(
            validation_config(
                "LOWEST", fluid=FluidPlan(mode="fluid", aggregator_fanout=2)
            )
        )
        system.sim.run(until=500.0)
        plane = system.fluid
        assert plane.aggregate_depth == AggregatorTree(4, 2).depth
        assert 0.0 <= plane.aggregate_occupancy() <= 1.0
        stats = plane.stats()
        assert stats["flushes"] > 0
        assert stats["aggregate_depth"] == plane.aggregate_depth
