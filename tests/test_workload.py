"""Tests for arrival processes, runtime models, and workload generation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import RngHub
from repro.workload import (
    BurstyArrivals,
    JobClass,
    PoissonArrivals,
    RuntimeModel,
    WorkloadGenerator,
)


def rng(seed=0, name="wl"):
    return RngHub(seed).stream(name)


class TestPoissonArrivals:
    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0)

    def test_empty_horizon(self):
        assert PoissonArrivals(1.0).times(0.0, rng()) == []

    def test_times_sorted_within_horizon(self):
        ts = PoissonArrivals(0.5).times(1000.0, rng())
        assert ts == sorted(ts)
        assert all(0 <= t < 1000.0 for t in ts)

    def test_rate_statistics(self):
        ts = PoissonArrivals(2.0).times(5000.0, rng(1))
        # Expect ~10000 arrivals; 5 sigma band.
        assert abs(len(ts) - 10000) < 5 * np.sqrt(10000)

    def test_interarrival_mean(self):
        ts = np.array(PoissonArrivals(1.0).times(20000.0, rng(2)))
        gaps = np.diff(ts)
        assert np.mean(gaps) == pytest.approx(1.0, rel=0.05)

    def test_deterministic(self):
        a = PoissonArrivals(1.0).times(100.0, rng(3))
        b = PoissonArrivals(1.0).times(100.0, rng(3))
        assert a == b


class TestBurstyArrivals:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            BurstyArrivals(0.0)
        with pytest.raises(ValueError):
            BurstyArrivals(1.0, burst_factor=0.5)
        with pytest.raises(ValueError):
            BurstyArrivals(1.0, mean_quiet=0.0)

    def test_times_sorted_within_horizon(self):
        ts = BurstyArrivals(0.2, burst_factor=10.0).times(2000.0, rng(4))
        assert ts == sorted(ts)
        assert all(0 <= t < 2000.0 for t in ts)

    def test_bursts_raise_volume(self):
        quiet = len(PoissonArrivals(0.2).times(20000.0, rng(5)))
        bursty = len(
            BurstyArrivals(0.2, burst_factor=10.0, mean_quiet=300, mean_burst=300).times(
                20000.0, rng(5, "b")
            )
        )
        assert bursty > 1.5 * quiet


class TestRuntimeModel:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            RuntimeModel(median=0.0)
        with pytest.raises(ValueError):
            RuntimeModel(sigma=0.0)
        with pytest.raises(ValueError):
            RuntimeModel(min_runtime=0.0)
        with pytest.raises(ValueError):
            RuntimeModel(request_pad_lo=0.5)
        with pytest.raises(ValueError):
            RuntimeModel(request_pad_lo=3.0, request_pad_hi=2.0)

    def test_runtimes_positive_above_floor(self):
        m = RuntimeModel(min_runtime=5.0)
        xs = m.sample_runtimes(1000, rng(6))
        assert (xs >= 5.0).all()

    def test_median_roughly_right(self):
        m = RuntimeModel(median=430.0, sigma=1.1)
        xs = m.sample_runtimes(40000, rng(7))
        assert np.median(xs) == pytest.approx(430.0, rel=0.05)

    def test_mean_formula(self):
        m = RuntimeModel(median=430.0, sigma=1.1)
        xs = m.sample_runtimes(200000, rng(8))
        assert np.mean(xs) == pytest.approx(m.mean, rel=0.05)

    def test_requested_upper_bounds_runtime(self):
        m = RuntimeModel()
        runs = m.sample_runtimes(500, rng(9))
        reqs = m.sample_requested(runs, rng(9, "req"))
        assert (reqs >= runs).all()
        assert (reqs <= 3.0 * runs + 1e-9).all()

    def test_remote_fraction_matches_empirical(self):
        m = RuntimeModel(median=430.0, sigma=1.1)
        xs = m.sample_runtimes(100000, rng(10))
        emp = np.mean(xs > 700.0)
        assert emp == pytest.approx(m.remote_fraction(700.0), abs=0.01)

    def test_remote_fraction_monotone_in_threshold(self):
        m = RuntimeModel()
        assert m.remote_fraction(100.0) > m.remote_fraction(700.0) > m.remote_fraction(5000.0)

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            RuntimeModel().sample_runtimes(-1, rng())


class TestWorkloadGenerator:
    def make(self, rate=0.05, clusters=4, **kw):
        return WorkloadGenerator(rate=rate, n_clusters=clusters, **kw)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            WorkloadGenerator(rate=1.0, n_clusters=0)
        with pytest.raises(ValueError):
            WorkloadGenerator(rate=1.0, n_clusters=1, t_cpu=0.0)
        with pytest.raises(ValueError):
            WorkloadGenerator(rate=1.0, n_clusters=1, benefit_lo=0.0)
        with pytest.raises(ValueError):
            WorkloadGenerator(rate=1.0, n_clusters=1, benefit_lo=5.0, benefit_hi=2.0)

    def test_job_ids_dense_and_sorted(self):
        jobs = self.make().generate(5000.0, rng(11))
        assert [j.job_id for j in jobs] == list(range(len(jobs)))
        assert all(
            jobs[i].arrival_time <= jobs[i + 1].arrival_time for i in range(len(jobs) - 1)
        )

    def test_classification_threshold(self):
        jobs = self.make().generate(20000.0, rng(12))
        for j in jobs:
            expected = JobClass.LOCAL if j.execution_time <= 700.0 else JobClass.REMOTE
            assert j.job_class == expected

    def test_both_classes_present(self):
        jobs = self.make().generate(20000.0, rng(13))
        classes = {j.job_class for j in jobs}
        assert classes == {JobClass.LOCAL, JobClass.REMOTE}

    def test_benefit_factors_in_table1_range(self):
        jobs = self.make().generate(10000.0, rng(14))
        assert all(2.0 <= j.benefit_factor <= 5.0 for j in jobs)
        assert all(j.benefit_bound == j.benefit_factor * j.execution_time for j in jobs)

    def test_partition_size_fixed_at_one(self):
        jobs = self.make().generate(2000.0, rng(15))
        assert all(j.partition_size == 1 for j in jobs)

    def test_submit_clusters_cover_all(self):
        jobs = self.make(clusters=4).generate(20000.0, rng(16))
        assert {j.submit_cluster for j in jobs} == {0, 1, 2, 3}

    def test_requested_bounds_execution(self):
        jobs = self.make().generate(5000.0, rng(17))
        assert all(j.requested_time >= j.execution_time for j in jobs)

    def test_offered_load_formula(self):
        g = self.make(rate=0.1)
        assert g.offered_load(1000.0) == pytest.approx(0.1 * 1000.0 * g.runtime_model.mean)

    def test_deterministic(self):
        a = self.make().generate(3000.0, rng(18))
        b = self.make().generate(3000.0, rng(18))
        assert a == b

    def test_empty_horizon_gives_no_jobs(self):
        assert self.make().generate(0.0, rng(19)) == []


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    rate=st.floats(min_value=0.01, max_value=0.5),
    clusters=st.integers(min_value=1, max_value=8),
)
def test_workload_invariants(seed, rate, clusters):
    """Every generated job satisfies the model's structural contract."""
    jobs = WorkloadGenerator(rate=rate, n_clusters=clusters).generate(2000.0, rng(seed))
    for j in jobs:
        assert j.execution_time > 0
        assert j.requested_time >= j.execution_time
        assert 0 <= j.submit_cluster < clusters
        assert 0 <= j.arrival_time < 2000.0
        assert j.job_class in (JobClass.LOCAL, JobClass.REMOTE)
