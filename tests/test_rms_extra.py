"""Tests for the extension baselines RANDOM and THRESHOLD."""

import pytest

from repro.grid import JobState
from repro.rms import rms_names
from repro.rms.extra import RandomScheduler, ThresholdScheduler, register_extras
from repro.rms.registry import RMS_BY_NAME, get_rms
from repro.workload import JobClass

from helpers import MiniGrid, make_job


def mark_cluster_loaded(sched, load=5.0):
    for rid in sched.table.loads():
        sched.table.record(rid, load, sched.sim.now)


class TestRegistration:
    def test_not_registered_by_default(self):
        # ALL_RMS stays the paper's seven even after registration.
        register_extras()
        assert len(rms_names()) == 7
        assert get_rms("RANDOM").scheduler_cls is RandomScheduler
        assert get_rms("threshold").scheduler_cls is ThresholdScheduler

    def test_idempotent(self):
        register_extras()
        register_extras()
        assert sum(1 for n in RMS_BY_NAME if n == "RANDOM") == 1


class TestRandom:
    def test_remote_job_transferred_blindly(self):
        g = MiniGrid(scheduler_cls=RandomScheduler, n_clusters=3, resources_per_cluster=2)
        job = make_job(execution=900.0, job_class=JobClass.REMOTE)
        g.submit(job, cluster=0)
        g.sim.run()
        assert job.state == JobState.COMPLETED
        assert job.transfers == 1
        assert job.executed_cluster in (1, 2)

    def test_local_job_stays(self):
        g = MiniGrid(scheduler_cls=RandomScheduler, n_clusters=3, resources_per_cluster=2)
        job = make_job(execution=50.0, job_class=JobClass.LOCAL)
        g.submit(job, cluster=0)
        g.sim.run()
        assert job.executed_cluster == 0

    def test_no_peers_runs_locally(self):
        g = MiniGrid(scheduler_cls=RandomScheduler, n_clusters=1, resources_per_cluster=2)
        job = make_job(execution=900.0, job_class=JobClass.REMOTE)
        g.submit(job, cluster=0)
        g.sim.run()
        assert job.executed_cluster == 0


class TestThreshold:
    def make(self, n_clusters=3):
        g = MiniGrid(
            scheduler_cls=ThresholdScheduler, n_clusters=n_clusters,
            resources_per_cluster=2,
        )
        for s in g.schedulers:
            s.l_p = 2
        return g

    def test_first_idle_peer_accepts(self):
        g = self.make()
        job = make_job(execution=900.0, job_class=JobClass.REMOTE)
        g.submit(job, cluster=0)
        g.sim.run()
        assert job.state == JobState.COMPLETED
        assert job.transfers == 1  # everyone idle: first probe accepts
        assert g.schedulers[0].probes_sent == 1

    def test_all_loaded_falls_back_local(self):
        g = self.make()
        for s in g.schedulers[1:]:
            mark_cluster_loaded(s)
        job = make_job(execution=900.0, job_class=JobClass.REMOTE)
        g.submit(job, cluster=0)
        g.sim.run()
        assert job.executed_cluster == 0
        assert g.schedulers[0].probes_sent == 2  # tried both, both refused

    def test_second_peer_accepts_after_first_refuses(self):
        g = self.make()
        # Load exactly one remote cluster; the probe chain must skip it.
        loaded = [s for s in g.schedulers[1:]][0]
        mark_cluster_loaded(loaded)
        job = make_job(execution=900.0, job_class=JobClass.REMOTE)
        g.submit(job, cluster=0)
        g.sim.run()
        assert job.state == JobState.COMPLETED
        assert job.executed_cluster != loaded.scheduler_id or job.transfers == 0

    def test_probe_timeout_advances_chain(self):
        g = self.make()
        for s in g.schedulers[1:]:
            s.on_poll_request = lambda m: None  # drop all probes
        job = make_job(execution=100.0, job_class=JobClass.REMOTE)
        g.submit(job, cluster=0)
        g.sim.run()
        assert job.state == JobState.COMPLETED
        assert job.executed_cluster == 0

    def test_sequential_not_parallel(self):
        """Probes go out one at a time: after the first request is
        answered affirmatively, no further probes are sent."""
        g = self.make()
        job = make_job(execution=900.0, job_class=JobClass.REMOTE)
        g.submit(job, cluster=0)
        g.sim.run()
        assert g.schedulers[0].probes_sent == 1
