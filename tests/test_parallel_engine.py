"""Tests for the experiment engine and its content-addressed run cache.

Covers the cache robustness contract (corrupted/truncated entries fall
back to recompute; ``read=False`` bypasses reads but still writes),
batch semantics (order preservation, deduplication), and worker-count
resolution.
"""

import json

import pytest

from repro.core.efficiency import EfficiencyRecord
from repro.experiments import SimulationConfig
from repro.experiments.parallel import (
    ExperimentEngine,
    RunCache,
    config_key,
    metrics_from_jsonable,
    metrics_json_bytes,
    metrics_to_jsonable,
    resolve_jobs,
)
from repro.experiments.parallel import engine as engine_mod
from repro.experiments.runner import RunMetrics


def cfg(**kw):
    kw.setdefault("rms", "LOWEST")
    kw.setdefault("n_schedulers", 3)
    kw.setdefault("n_resources", 9)
    kw.setdefault("workload_rate", 0.004)
    kw.setdefault("horizon", 1500.0)
    kw.setdefault("drain", 2500.0)
    return SimulationConfig(**kw)


def stub_metrics(seed=0):
    return RunMetrics(
        record=EfficiencyRecord(F=200.0 + seed, G=100.0, H=2.0),
        jobs_submitted=10,
        jobs_completed=10,
        jobs_successful=9,
        mean_response=50.0,
        throughput=0.009,
        messages_sent=40,
        scheduler_busy=100.0,
        horizon=1500.0,
    )


@pytest.fixture
def counting_runner(monkeypatch):
    """Replace the engine's serial run function with a counting stub."""
    calls = []

    def fake_run(config):
        calls.append(config)
        return stub_metrics(config.seed)

    monkeypatch.setattr(engine_mod, "run_simulation", fake_run)
    return calls


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs() == 3

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(2) == 2

    def test_zero_means_cpu_count(self):
        import os

        assert resolve_jobs(0) == (os.cpu_count() or 1)


class TestMetricsRoundTrip:
    def test_jsonable_round_trip(self):
        m = stub_metrics(3)
        again = metrics_from_jsonable(metrics_to_jsonable(m))
        assert again == m
        assert metrics_json_bytes(again) == metrics_json_bytes(m)


class TestRunMany:
    def test_order_preserved(self, counting_runner):
        engine = ExperimentEngine(jobs=1)
        configs = [cfg(seed=s) for s in (5, 3, 9)]
        results = engine.run_many(configs)
        assert [m.record.F for m in results] == [205.0, 203.0, 209.0]

    def test_duplicates_run_once(self, counting_runner):
        engine = ExperimentEngine(jobs=1)
        results = engine.run_many([cfg(seed=1), cfg(seed=1), cfg(seed=2)])
        assert len(counting_runner) == 2
        assert engine.runs_executed == 2
        assert results[0] == results[1]

    def test_cache_hit_skips_execution(self, counting_runner, tmp_path):
        cache = RunCache(tmp_path)
        first = ExperimentEngine(jobs=1, cache=cache)
        first.run(cfg(seed=7))
        assert len(counting_runner) == 1
        second = ExperimentEngine(jobs=1, cache=RunCache(tmp_path))
        result = second.run(cfg(seed=7))
        assert len(counting_runner) == 1  # served from disk, not recomputed
        assert second.runs_executed == 0
        assert result == stub_metrics(7)

    def test_engine_without_cache_always_runs(self, counting_runner):
        engine = ExperimentEngine(jobs=1)
        engine.run(cfg(seed=1))
        engine.run(cfg(seed=1))
        assert len(counting_runner) == 2


class TestCacheRobustness:
    def _warm(self, tmp_path, counting_runner, seed=7):
        cache = RunCache(tmp_path)
        ExperimentEngine(jobs=1, cache=cache).run(cfg(seed=seed))
        return cache.path_for(config_key(cfg(seed=seed)))

    def test_corrupted_entry_recomputed_not_crash(self, tmp_path, counting_runner):
        path = self._warm(tmp_path, counting_runner)
        path.write_text("{ not json at all")
        cache = RunCache(tmp_path)
        result = ExperimentEngine(jobs=1, cache=cache).run(cfg(seed=7))
        assert result == stub_metrics(7)
        assert len(counting_runner) == 2  # recomputed
        assert cache.errors == 1
        # and the bad entry was repaired in place
        assert json.loads(path.read_text())["metrics"]["jobs_submitted"] == 10

    def test_truncated_entry_recomputed(self, tmp_path, counting_runner):
        path = self._warm(tmp_path, counting_runner)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        result = ExperimentEngine(jobs=1, cache=RunCache(tmp_path)).run(cfg(seed=7))
        assert result == stub_metrics(7)
        assert len(counting_runner) == 2

    def test_wrong_version_entry_recomputed(self, tmp_path, counting_runner):
        path = self._warm(tmp_path, counting_runner)
        payload = json.loads(path.read_text())
        payload["version"] = -1
        path.write_text(json.dumps(payload))
        ExperimentEngine(jobs=1, cache=RunCache(tmp_path)).run(cfg(seed=7))
        assert len(counting_runner) == 2

    def test_malformed_metrics_payload_recomputed(self, tmp_path, counting_runner):
        path = self._warm(tmp_path, counting_runner)
        payload = json.loads(path.read_text())
        del payload["metrics"]["record"]
        path.write_text(json.dumps(payload))
        ExperimentEngine(jobs=1, cache=RunCache(tmp_path)).run(cfg(seed=7))
        assert len(counting_runner) == 2

    def test_no_cache_bypasses_reads_but_still_writes(self, tmp_path, counting_runner):
        self._warm(tmp_path, counting_runner)
        bypass = RunCache(tmp_path, read=False)
        ExperimentEngine(jobs=1, cache=bypass).run(cfg(seed=7))
        assert len(counting_runner) == 2  # read bypassed: recomputed
        assert bypass.writes == 1  # ... but the fresh result was persisted
        # a reading engine now gets the rewritten entry for free
        ExperimentEngine(jobs=1, cache=RunCache(tmp_path)).run(cfg(seed=7))
        assert len(counting_runner) == 2

    def test_len_and_clear(self, tmp_path, counting_runner):
        cache = RunCache(tmp_path)
        engine = ExperimentEngine(jobs=1, cache=cache)
        engine.run_many([cfg(seed=s) for s in (1, 2, 3)])
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_cache_dir_created_lazily(self, tmp_path):
        root = tmp_path / "sub" / "cache"
        RunCache(root)
        assert not root.exists()


class TestCacheEnvDefaults:
    def test_default_root_from_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        assert RunCache().root == tmp_path / "envcache"
