"""Tests for scaling variables, enablers, and paths."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Enabler, EnablerSpace, ScalingPath, ScalingStrategy, ScalingVariable


class TestScalingVariable:
    def test_linear_growth(self):
        v = ScalingVariable("nodes", base=100.0)
        assert v.at(1) == 100.0
        assert v.at(6) == 600.0

    def test_constant_growth(self):
        v = ScalingVariable("net", base=1000.0, growth="constant")
        assert v.at(6) == 1000.0

    def test_bad_growth_rejected(self):
        with pytest.raises(ValueError):
            ScalingVariable("x", 1.0, growth="exponential")

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            ScalingVariable("x", 1.0).at(0)


class TestEnabler:
    def test_default_value(self):
        e = Enabler("tau", (10.0, 20.0, 40.0), default_index=1)
        assert e.default == 20.0

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            Enabler("tau", ())

    def test_bad_default_rejected(self):
        with pytest.raises(ValueError):
            Enabler("tau", (1.0,), default_index=5)


class TestEnablerSpace:
    def space(self):
        return EnablerSpace(
            [
                Enabler("tau", (10.0, 20.0, 40.0, 80.0), default_index=1),
                Enabler("nbr", (2.0, 4.0), default_index=0),
                Enabler("fixed", (1.0,)),
            ]
        )

    def test_requires_enablers(self):
        with pytest.raises(ValueError):
            EnablerSpace([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            EnablerSpace([Enabler("a", (1.0,)), Enabler("a", (2.0,))])

    def test_defaults(self):
        assert self.space().default_settings() == {"tau": 20.0, "nbr": 2.0, "fixed": 1.0}

    def test_size(self):
        assert self.space().size == 4 * 2 * 1

    def test_contains_and_getitem(self):
        s = self.space()
        assert "tau" in s
        assert s["nbr"].values == (2.0, 4.0)

    def test_random_settings_in_grid(self):
        s = self.space()
        rng = np.random.default_rng(0)
        for _ in range(20):
            st_ = s.random_settings(rng)
            for e in s.enablers:
                assert st_[e.name] in e.values

    def test_neighbor_moves_one_enabler_one_step(self):
        s = self.space()
        rng = np.random.default_rng(1)
        base = s.default_settings()
        for _ in range(50):
            nb = s.neighbor(base, rng)
            diffs = [k for k in base if nb[k] != base[k]]
            assert len(diffs) <= 1
            if diffs:
                k = diffs[0]
                vals = list(s[k].values)
                assert abs(vals.index(nb[k]) - vals.index(base[k])) == 1

    def test_neighbor_never_moves_fixed(self):
        s = self.space()
        rng = np.random.default_rng(2)
        for _ in range(30):
            assert s.neighbor(s.default_settings(), rng)["fixed"] == 1.0

    def test_neighbor_all_fixed_returns_same(self):
        s = EnablerSpace([Enabler("a", (1.0,))])
        rng = np.random.default_rng(0)
        assert s.neighbor({"a": 1.0}, rng) == {"a": 1.0}

    def test_neighbor_does_not_mutate_input(self):
        s = self.space()
        rng = np.random.default_rng(3)
        base = s.default_settings()
        snapshot = dict(base)
        s.neighbor(base, rng)
        assert base == snapshot


class TestScalingPath:
    def test_default_is_paper_path(self):
        assert tuple(ScalingPath()) == (1, 2, 3, 4, 5, 6)
        assert ScalingPath().base == 1

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ScalingPath(())

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ScalingPath((0, 1))

    def test_rejects_decreasing(self):
        with pytest.raises(ValueError):
            ScalingPath((1, 3, 2))

    def test_len(self):
        assert len(ScalingPath((1, 2))) == 2


class TestScalingStrategy:
    def test_variables_at(self):
        strat = ScalingStrategy(
            name="case1",
            variables=[
                ScalingVariable("nodes", 100.0),
                ScalingVariable("rate", 0.05),
                ScalingVariable("srv", 1.0, growth="constant"),
            ],
            enabler_space=EnablerSpace([Enabler("tau", (10.0,))]),
        )
        assert strat.variables_at(3) == {"nodes": 300.0, "rate": pytest.approx(0.15), "srv": 1.0}


@settings(max_examples=50, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=1000),
    steps=st.integers(min_value=1, max_value=60),
)
def test_neighbor_walk_stays_in_grid(seed, steps):
    """Any random walk through neighbor() stays inside the grid."""
    space = EnablerSpace(
        [
            Enabler("a", (1.0, 2.0, 3.0)),
            Enabler("b", (10.0, 20.0)),
        ]
    )
    rng = np.random.default_rng(seed)
    x = space.default_settings()
    for _ in range(steps):
        x = space.neighbor(x, rng)
        assert x["a"] in (1.0, 2.0, 3.0)
        assert x["b"] in (10.0, 20.0)
