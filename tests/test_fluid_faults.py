"""Fluid traffic mode under fault injection (churn, crashes, liveness).

Fault *transitions* stay discrete in fluid mode — crash/repair
schedules, dead declarations, re-dispatch — while detection *work*
(heartbeat sweeps) becomes a rate charge.  The contracts: the fault
timeline is bit-identical across modes (the injector draws from the
``"faults"`` RNG stream, which fluid mode never touches), crash and
recovery re-derive the modeled rates immediately, and the ``G:faults``
attribution keeps the same per-entity cell structure.
"""

import dataclasses
import math

from repro.experiments import SimulationConfig, run_simulation
from repro.experiments.parallel.cache import metrics_json_bytes
from repro.experiments.runner import build_system
from repro.faults import CrashEvent, FaultPlan
from repro.fluid import FluidPlan

FLUID = FluidPlan(mode="fluid")
CHURN = FaultPlan(resource_mttf=500.0, resource_mttr=60.0)


def fluid_config(**overrides):
    kwargs = dict(
        rms="LOWEST",
        n_schedulers=4,
        n_resources=16,
        workload_rate=16 * 0.00014,
        horizon=3000.0,
        drain=1500.0,
        seed=11,
        fluid=FLUID,
    )
    kwargs.update(overrides)
    return SimulationConfig(**kwargs)


class TestInertPlan:
    def test_inert_fault_plan_is_byte_identical(self):
        baseline = run_simulation(fluid_config())
        with_plan = run_simulation(fluid_config(faults=FaultPlan()))
        assert metrics_json_bytes(baseline) == metrics_json_bytes(with_plan)
        assert with_plan.fault_stats is None


class TestChurn:
    def test_fault_timeline_identical_across_modes(self):
        discrete = run_simulation(fluid_config(fluid=FluidPlan(), faults=CHURN))
        fluid = run_simulation(fluid_config(faults=CHURN))
        assert fluid.fault_stats["crashes"] == discrete.fault_stats["crashes"]
        assert fluid.fault_stats["recoveries"] == discrete.fault_stats["recoveries"]
        assert fluid.fault_stats["crashes"] > 0

    def test_fluid_liveness_watch_declares_dead(self):
        metrics = run_simulation(fluid_config(faults=CHURN))
        assert metrics.fault_stats["dead_reported"] > 0
        assert metrics.fault_stats["dead_notices"] > 0
        assert metrics.fault_stats["redispatches"] > 0

    def test_g_faults_attribution_conserved(self):
        metrics = run_simulation(fluid_config(faults=CHURN))
        cells = {k: v for k, v in metrics.attribution.items() if k.startswith("g.faults")}
        # Per-estimator heartbeat sweeps stay attributed even as rates.
        hb = [k for k in cells if k.endswith("|heartbeat")]
        assert len(hb) == 4 and all(cells[k] > 0.0 for k in hb)
        # Dead handling stays discrete and scheduler-attributed.
        assert any("|resource_dead" in k for k in cells)
        # Conservation: g.* cells re-sum to G exactly (fsum invariant).
        g_cells = [v for k, v in metrics.attribution.items() if k.startswith("g.")]
        assert math.fsum(g_cells) == metrics.record.G

    def test_heartbeat_charges_match_discrete_within_tolerance(self):
        plan = FaultPlan(crashes=[CrashEvent(resource=0, at=500.0, duration=400.0)])

        def heartbeat_total(config):
            metrics = run_simulation(config)
            return math.fsum(
                v for k, v in metrics.attribution.items()
                if k.startswith("g.faults") and k.endswith("|heartbeat")
            )

        d = heartbeat_total(fluid_config(fluid=FluidPlan(), faults=plan))
        f = heartbeat_total(fluid_config(faults=plan))
        assert d > 0.0
        assert abs(f - d) / d <= 0.10


class TestRateRederivation:
    def test_crash_and_recovery_rederive_rates(self):
        plan = FaultPlan(crashes=[CrashEvent(resource=0, at=500.0, duration=2000.0)])
        healthy = build_system(fluid_config())
        healthy.sim.run(until=3000.0)
        faulty = build_system(fluid_config(faults=plan))
        faulty.sim.run(until=3000.0)
        # A resource down for 2000 time units emits no keepalives: the
        # modeled flow shrinks with the pool.
        assert faulty.fluid.modeled_keepalives < healthy.fluid.modeled_keepalives
        assert faulty.fluid.declared_dead == 1

    def test_recovery_reannounces(self):
        # Down 400 units, then back: one dead declaration, and the
        # post-repair re-announcement revives the modeled flow (more
        # updates than the run where the resource stays down).
        short = FaultPlan(crashes=[CrashEvent(resource=0, at=500.0, duration=400.0)])
        long = FaultPlan(crashes=[CrashEvent(resource=0, at=500.0, duration=4000.0)])
        recovered = build_system(fluid_config(faults=short))
        recovered.sim.run(until=3000.0)
        down = build_system(fluid_config(faults=long))
        down.sim.run(until=3000.0)
        assert recovered.fluid.modeled_keepalives > down.fluid.modeled_keepalives
        assert recovered.fluid.declared_dead == down.fluid.declared_dead == 1

    def test_config_key_distinguishes_fluid_fault_runs(self):
        from repro.experiments.parallel.hashing import config_key

        plain = fluid_config()
        churny = fluid_config(faults=CHURN)
        inert = fluid_config(faults=FaultPlan())
        assert config_key(plain) == config_key(inert)
        assert config_key(plain) != config_key(churny)
