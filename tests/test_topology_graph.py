"""Tests for the Topology data structure."""

import pytest

from repro.topology import Topology


def triangle():
    t = Topology(3)
    t.add_link(0, 1, 1.0, 10.0)
    t.add_link(1, 2, 2.0, 20.0)
    t.add_link(0, 2, 3.0, 30.0)
    return t


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Topology(0)

    def test_counts(self):
        t = triangle()
        assert t.n_nodes == 3
        assert t.n_links == 3

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Topology(2).add_link(1, 1, 1.0, 1.0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Topology(2).add_link(0, 5, 1.0, 1.0)

    def test_zero_latency_rejected(self):
        with pytest.raises(ValueError):
            Topology(2).add_link(0, 1, 0.0, 1.0)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            Topology(2).add_link(0, 1, 1.0, 0.0)

    def test_link_is_symmetric(self):
        t = triangle()
        assert t.link(0, 1) is t.link(1, 0)
        assert t.has_link(2, 0)

    def test_link_endpoints_normalized(self):
        t = Topology(3)
        link = t.add_link(2, 0, 1.0, 1.0)
        assert (link.u, link.v) == (0, 2)

    def test_replacing_link_keeps_count(self):
        t = Topology(2)
        t.add_link(0, 1, 1.0, 1.0)
        t.add_link(0, 1, 5.0, 2.0)
        assert t.n_links == 1
        assert t.link(0, 1).latency == 5.0

    def test_degree_and_neighbors(self):
        t = triangle()
        assert t.degree(0) == 2
        assert sorted(t.neighbors(0)) == [1, 2]

    def test_links_iterates_each_once(self):
        t = triangle()
        links = list(t.links())
        assert len(links) == 3
        assert len({(l.u, l.v) for l in links}) == 3


class TestConnectivity:
    def test_connected_triangle(self):
        assert triangle().is_connected()

    def test_disconnected(self):
        t = Topology(4)
        t.add_link(0, 1, 1.0, 1.0)
        t.add_link(2, 3, 1.0, 1.0)
        assert not t.is_connected()

    def test_single_node_connected(self):
        assert Topology(1).is_connected()

    def test_to_networkx_roundtrip(self):
        t = triangle()
        g = t.to_networkx()
        assert g.number_of_nodes() == 3
        assert g.number_of_edges() == 3
        assert g[0][1]["latency"] == 1.0
        assert g[1][2]["bandwidth"] == 20.0
