"""Integration tests: build and run complete systems for every RMS."""

import pytest

from repro.experiments import SimulationConfig, build_system, run_simulation
from repro.faults import FaultPlan
from repro.experiments.cases import get_case, make_simulate
from repro.experiments.config import PROFILES
from repro.grid import JobState
from repro.rms import rms_names


def tiny_config(rms="LOWEST", **kw):
    """A deliberately small system so each test runs in ~10 ms."""
    kw.setdefault("n_schedulers", 3)
    kw.setdefault("n_resources", 9)
    kw.setdefault("workload_rate", 0.004)
    kw.setdefault("horizon", 2000.0)
    kw.setdefault("drain", 3000.0)
    kw.setdefault("update_interval", 20.0)
    return SimulationConfig(rms=rms, **kw)


class TestBuildSystem:
    def test_shape(self):
        sys_ = build_system(tiny_config())
        assert len(sys_.schedulers) == 3
        assert len(sys_.resources) == 9
        assert len(sys_.estimators) == 3
        assert sys_.middleware is None  # LOWEST is not a superscheduler

    def test_central_collapses_to_one_scheduler(self):
        sys_ = build_system(tiny_config("CENTRAL"))
        assert len(sys_.schedulers) == 1
        assert len(sys_.schedulers[0].resources) == 9
        assert len(sys_.estimators) == 1

    def test_superscheduler_gets_middleware(self):
        for rms in ("S-I", "R-I", "Sy-I"):
            sys_ = build_system(tiny_config(rms))
            assert sys_.middleware is not None
            assert all(s.middleware is sys_.middleware for s in sys_.schedulers)

    def test_neighborhoods_bounded(self):
        sys_ = build_system(tiny_config(neighborhood_size=1))
        assert all(len(s.peers) == 1 for s in sys_.schedulers)

    def test_resources_wired(self):
        sys_ = build_system(tiny_config())
        for res in sys_.resources:
            assert res.scheduler is not None
            assert res.estimator is not None
            assert res.resource_id in res.scheduler.resources

    def test_estimator_scaling(self):
        sys_ = build_system(tiny_config(n_estimators=6))
        assert len(sys_.estimators) == 6

    def test_workload_prepared(self):
        sys_ = build_system(tiny_config())
        assert len(sys_.jobs) > 0
        assert all(j.state == JobState.SUBMITTED for j in sys_.jobs)


class TestRunSimulation:
    @pytest.mark.parametrize("rms", rms_names())
    def test_every_rms_runs_and_conserves_jobs(self, rms):
        m = run_simulation(tiny_config(rms))
        assert m.jobs_submitted > 0
        # conservation: all submitted jobs completed within the drain
        assert m.jobs_completed == m.jobs_submitted
        assert 0.0 <= m.success_rate <= 1.0
        assert m.record.F >= 0 and m.record.G > 0 and m.record.H > 0
        assert 0.0 < m.efficiency < 1.0

    def test_deterministic_runs(self):
        a = run_simulation(tiny_config(seed=5))
        b = run_simulation(tiny_config(seed=5))
        assert a.record == b.record
        assert a.jobs_successful == b.jobs_successful
        assert a.messages_sent == b.messages_sent

    def test_seed_changes_outcome(self):
        a = run_simulation(tiny_config(seed=5))
        b = run_simulation(tiny_config(seed=6))
        assert a.record != b.record

    def test_shorter_update_interval_costs_more_overhead(self):
        fast = run_simulation(tiny_config(update_interval=8.0))
        slow = run_simulation(tiny_config(update_interval=80.0))
        assert fast.record.G > slow.record.G

    def test_throughput_definition(self):
        m = run_simulation(tiny_config())
        assert m.throughput == pytest.approx(m.jobs_successful / m.horizon)

    def test_message_loss_tolerated(self):
        """With 10% message loss every protocol must still terminate
        and complete its jobs (timeouts drive progress)."""
        for rms in ("LOWEST", "RESERVE", "S-I"):
            m = run_simulation(tiny_config(rms, faults=FaultPlan(link_loss=0.1)))
            assert m.jobs_completed == m.jobs_submitted

    def test_heavy_loss_still_terminates(self):
        m = run_simulation(tiny_config("LOWEST", faults=FaultPlan(link_loss=0.4)))
        assert m.jobs_completed == m.jobs_submitted


class TestMakeSimulate:
    def test_memoizes(self):
        case = get_case(1)
        prof = PROFILES["ci"]
        memo = {}
        sim = make_simulate(case, "LOWEST", prof, memo=memo)
        # Patch: run on a scaled-down k by abusing the case config is
        # expensive; just verify cache identity on repeated calls.
        settings = {"update_interval": 40.0, "neighborhood_size": 3.0, "link_delay_scale": 1.0}
        a = sim(1, settings)
        assert len(memo) == 1
        b = sim(1, dict(settings))
        assert a is b
        assert len(memo) == 1
