"""Protocol tests for RESERVE and AUCTION."""

import pytest

from repro.grid import JobState
from repro.network import Message, MessageKind
from repro.rms import AuctionScheduler, ReserveScheduler
from repro.workload import JobClass

from helpers import MiniGrid, make_job


def mark_cluster_loaded(sched, load=5.0):
    for rid in sched.table.loads():
        sched.table.record(rid, load, sched.sim.now)


class TestReserve:
    def make(self, n_clusters=2):
        g = MiniGrid(
            scheduler_cls=ReserveScheduler, n_clusters=n_clusters,
            resources_per_cluster=2,
        )
        for s in g.schedulers:
            s.l_p = 1
        return g

    def trigger_advert(self, sched):
        """Feed a status update so the idle cluster advertises."""
        sched.deliver(
            Message(
                MessageKind.STATUS_FORWARD,
                payload={
                    "resource_id": min(sched.table.loads()),
                    "cluster_id": sched.scheduler_id,
                    "load": 0,
                },
            )
        )

    def test_idle_cluster_advertises(self):
        g = self.make()
        s1 = g.schedulers[1]
        self.trigger_advert(s1)
        g.sim.run()
        assert s1.adverts_sent == 1
        assert len(g.schedulers[0]._reservations) == 1

    def test_advert_rate_limited(self):
        g = self.make()
        s1 = g.schedulers[1]
        self.trigger_advert(s1)
        g.sim.run()
        self.trigger_advert(s1)  # within volunteer_interval
        g.sim.run()
        assert s1.adverts_sent == 1

    def test_loaded_cluster_does_not_advertise(self):
        g = self.make()
        s1 = g.schedulers[1]
        mark_cluster_loaded(s1)
        self.trigger_advert(s1)  # update says load 0 for one resource; avg 2.5 > T_l
        g.sim.run()
        assert s1.adverts_sent == 0

    def test_remote_job_uses_reservation(self):
        g = self.make()
        s0, s1 = g.schedulers
        self.trigger_advert(s1)
        g.sim.run()
        mark_cluster_loaded(s0)  # local above threshold
        job = make_job(execution=900.0, job_class=JobClass.REMOTE)
        g.submit(job, cluster=0)
        g.sim.run()
        assert s0.probes_sent == 1
        assert job.executed_cluster == 1
        assert job.transfers == 1

    def test_remote_job_local_when_below_threshold(self):
        g = self.make()
        s0, s1 = g.schedulers
        self.trigger_advert(s1)
        g.sim.run()
        job = make_job(execution=900.0, job_class=JobClass.REMOTE)
        g.submit(job, cluster=0)  # local avg load 0 <= T_l
        g.sim.run()
        assert s0.probes_sent == 0
        assert job.executed_cluster == 0

    def test_refused_probe_cancels_reservations(self):
        g = self.make()
        s0, s1 = g.schedulers
        self.trigger_advert(s1)
        g.sim.run()
        mark_cluster_loaded(s0)
        mark_cluster_loaded(s1)  # reservation now stale: s1 is loaded too
        job = make_job(execution=900.0, job_class=JobClass.REMOTE)
        g.submit(job, cluster=0)
        g.sim.run()
        assert job.executed_cluster == 0  # refused -> local
        assert s0.cancellations == 1
        assert s0._reservations == []

    def test_no_reservations_means_local(self):
        g = self.make()
        s0 = g.schedulers[0]
        mark_cluster_loaded(s0)
        job = make_job(execution=900.0, job_class=JobClass.REMOTE)
        g.submit(job, cluster=0)
        g.sim.run()
        assert job.executed_cluster == 0
        assert s0.probes_sent == 0

    def test_probe_timeout_falls_back_local(self):
        g = self.make()
        s0, s1 = g.schedulers
        self.trigger_advert(s1)
        g.sim.run()
        mark_cluster_loaded(s0)
        s1.on_reserve_probe = lambda m: None  # peer drops probes
        job = make_job(execution=100.0, job_class=JobClass.REMOTE)
        g.submit(job, cluster=0)
        g.sim.run()
        assert job.state == JobState.COMPLETED
        assert job.executed_cluster == 0


class TestAuction:
    def make(self, n_clusters=2):
        g = MiniGrid(
            scheduler_cls=AuctionScheduler, n_clusters=n_clusters,
            resources_per_cluster=2,
        )
        for s in g.schedulers:
            s.l_p = 1
        return g

    def feed_update(self, sched, load=0):
        sched.deliver(
            Message(
                MessageKind.STATUS_FORWARD,
                payload={
                    "resource_id": min(sched.table.loads()),
                    "cluster_id": sched.scheduler_id,
                    "load": load,
                },
            )
        )

    def test_local_class_jobs_bypass_auction(self):
        g = self.make()
        job = make_job(execution=50.0, job_class=JobClass.LOCAL)
        g.submit(job, cluster=0)
        g.sim.run()
        assert job.executed_cluster == 0

    def test_remote_job_parked_when_loaded(self):
        g = self.make()
        s0 = g.schedulers[0]
        mark_cluster_loaded(s0)
        job = make_job(execution=900.0, job_class=JobClass.REMOTE)
        g.submit(job, cluster=0)
        g.sim.run(until=5.0)
        assert job.state == JobState.WAITING
        assert s0.parked_count == 1

    def test_remote_job_immediate_when_light(self):
        g = self.make()
        job = make_job(execution=900.0, job_class=JobClass.REMOTE)
        g.submit(job, cluster=0)
        g.sim.run()
        assert job.executed_cluster == 0
        assert g.schedulers[0].parked_count == 0

    def test_full_auction_moves_parked_job(self):
        g = self.make()
        s0, s1 = g.schedulers
        mark_cluster_loaded(s0)
        job = make_job(execution=900.0, job_class=JobClass.REMOTE)
        g.submit(job, cluster=0)
        g.sim.run(until=5.0)
        assert job.state == JobState.WAITING
        # Idle cluster 1 sees an update -> invites -> s0 bids -> award.
        self.feed_update(s1, load=0)
        g.sim.run()
        # (completions re-trigger invitations later; at least the first
        # auction ran to an award)
        assert s1.auctions_started >= 1
        assert s0.bids_sent >= 1
        assert s1.awards_sent >= 1
        assert job.executed_cluster == 1
        assert job.transfers == 1
        assert job.state == JobState.COMPLETED

    def test_no_bids_when_nobody_loaded(self):
        g = self.make()
        s0, s1 = g.schedulers
        self.feed_update(s1, load=0)
        g.sim.run()
        assert s1.auctions_started == 1
        assert s0.bids_sent == 0
        assert s1.awards_sent == 0

    def test_invite_rate_limited(self):
        g = self.make()
        s1 = g.schedulers[1]
        self.feed_update(s1, load=0)
        g.sim.run()
        self.feed_update(s1, load=0)
        g.sim.run()
        assert s1.auctions_started == 1

    def test_award_with_drained_pool_is_harmless(self):
        g = self.make()
        s0, s1 = g.schedulers
        s0.deliver(Message(MessageKind.AUCTION_AWARD, payload={"reply_to": s1}))
        g.sim.run()
        assert s0.jobs_sent_remote == 0

    def test_park_timeout_forces_local(self):
        g = self.make()
        s0 = g.schedulers[0]
        s0.wait_timeout = 40.0
        mark_cluster_loaded(s0)
        job = make_job(execution=10.0, job_class=JobClass.REMOTE)
        g.submit(job, cluster=0)
        g.sim.run()
        assert job.state == JobState.COMPLETED
        assert job.executed_cluster == 0

    def test_highest_load_bidder_wins(self):
        g = self.make(n_clusters=3)
        s0, s1, s2 = g.schedulers
        s2.l_p = 2
        mark_cluster_loaded(s0, load=3.0)
        mark_cluster_loaded(s1, load=9.0)
        self.feed_update(s2, load=0)
        g.sim.run()
        # s1 (load 9) must win the award over s0 (load 3).
        assert s2.awards_sent == 1
        assert s1.served > 0  # received the award message
        # No parked jobs anywhere, so no transfer occurs; award wasted.
        assert s1.jobs_sent_remote == 0
