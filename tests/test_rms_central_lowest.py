"""Protocol tests for CENTRAL and LOWEST."""

import pytest

from repro.grid import JobState
from repro.rms import CentralScheduler, LowestScheduler
from repro.workload import JobClass

from helpers import MiniGrid, make_job


class TestCentral:
    def make(self, **kw):
        return MiniGrid(
            scheduler_cls=CentralScheduler, central=True, n_clusters=2,
            resources_per_cluster=2, **kw,
        )

    def test_remote_class_job_placed_from_global_table(self):
        g = self.make()
        job = make_job(execution=900.0, job_class=JobClass.REMOTE)
        g.submit(job)
        g.sim.run()
        assert job.state == JobState.COMPLETED
        assert job.executed_cluster == 0  # the single scheduler's id

    def test_spreads_over_entire_pool(self):
        g = self.make()
        for _ in range(4):
            g.submit(make_job(execution=500.0))
        g.sim.run(until=100.0)
        assert [r.jobs_received for r in g.resources] == [1, 1, 1, 1]

    def test_no_inter_scheduler_traffic(self):
        g = self.make()
        for _ in range(5):
            g.submit(make_job(execution=100.0, job_class=JobClass.REMOTE))
        g.sim.run()
        s = g.schedulers[0]
        assert s.jobs_sent_remote == 0
        assert s.jobs_received_remote == 0


class TestLowest:
    def make(self, n_clusters=3, **kw):
        return MiniGrid(
            scheduler_cls=LowestScheduler, n_clusters=n_clusters,
            resources_per_cluster=2, **kw,
        )

    def test_local_job_never_polls(self):
        g = self.make()
        job = make_job(execution=50.0, job_class=JobClass.LOCAL)
        g.submit(job, cluster=0)
        g.sim.run()
        assert g.schedulers[0].polls_started == 0
        assert job.executed_cluster == 0

    def test_remote_job_polls_lp_peers(self):
        g = self.make()
        g.schedulers[0].l_p = 2
        job = make_job(execution=900.0, job_class=JobClass.REMOTE)
        g.submit(job, cluster=0)
        g.sim.run()
        assert g.schedulers[0].polls_started == 1
        assert job.state == JobState.COMPLETED
        # 2 requests + 2 replies + dispatch-side messages passed the net
        polled = [s for s in g.schedulers[1:] if s.served > 0]
        assert len(polled) == 2

    def test_job_moves_to_least_loaded_cluster(self):
        g = self.make(n_clusters=2)
        s0 = g.schedulers[0]
        s0.l_p = 1
        # Local cluster looks busy; remote looks empty.
        s0.table.record(0, 5.0, 0.0)
        s0.table.record(1, 5.0, 0.0)
        job = make_job(execution=900.0, job_class=JobClass.REMOTE)
        g.submit(job, cluster=0)
        g.sim.run()
        assert job.executed_cluster == 1
        assert job.transfers == 1

    def test_job_stays_local_when_local_least_loaded(self):
        g = self.make(n_clusters=2)
        s0, s1 = g.schedulers[0], g.schedulers[1]
        s0.l_p = 1
        s1.table.record(2, 5.0, 0.0)
        s1.table.record(3, 5.0, 0.0)
        job = make_job(execution=900.0, job_class=JobClass.REMOTE)
        g.submit(job, cluster=0)
        g.sim.run()
        assert job.executed_cluster == 0
        assert job.transfers == 0

    def test_tie_prefers_local(self):
        g = self.make(n_clusters=2)
        g.schedulers[0].l_p = 1
        job = make_job(execution=900.0, job_class=JobClass.REMOTE)
        g.submit(job, cluster=0)
        g.sim.run()
        assert job.executed_cluster == 0  # equal loads: no pointless transfer

    def test_poll_reply_reports_min_table_load(self):
        g = self.make(n_clusters=2)
        s1 = g.schedulers[1]
        s1.table.record(2, 4.0, 0.0)
        s1.table.record(3, 7.0, 0.0)
        from repro.network import Message, MessageKind

        replies = []
        g.schedulers[0].on_poll_reply = lambda m: replies.append(m.payload)
        s1.deliver(
            Message(
                MessageKind.POLL_REQUEST,
                payload={"job_id": 1, "reply_to": g.schedulers[0]},
            )
        )
        g.sim.run()
        assert replies[0]["min_load"] == 4.0

    def test_timeout_decides_without_replies(self):
        """If peers never answer (offline), the job still gets placed."""
        g = self.make(n_clusters=2)
        s0 = g.schedulers[0]
        s0.l_p = 1
        # Peer that drops poll requests silently.
        g.schedulers[1].on_poll_request = lambda m: None
        job = make_job(execution=100.0, job_class=JobClass.REMOTE)
        g.submit(job, cluster=0)
        g.sim.run()
        assert job.state == JobState.COMPLETED
        assert job.executed_cluster == 0

    def test_remote_job_completes_end_to_end(self):
        g = self.make()
        jobs = [
            make_job(execution=800.0, job_class=JobClass.REMOTE) for _ in range(6)
        ]
        for i, j in enumerate(jobs):
            g.submit(j, cluster=i % 3)
        g.sim.run()
        assert all(j.state == JobState.COMPLETED for j in jobs)
