"""Tests for the F/G/H cost ledger."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Category, CostLedger


class TestCostLedger:
    def test_starts_empty(self):
        l = CostLedger()
        assert l.F == 0.0 and l.G == 0.0 and l.H == 0.0
        assert l.grand_total == 0.0

    def test_prefix_rollup(self):
        l = CostLedger()
        l.charge(Category.USEFUL, 10.0)
        l.charge(Category.SCHEDULE, 2.0)
        l.charge(Category.POLL, 3.0)
        l.charge(Category.JOB_CONTROL, 1.0)
        assert l.F == 10.0
        assert l.G == 5.0
        assert l.H == 1.0
        assert l.grand_total == 16.0

    def test_accumulates_same_category(self):
        l = CostLedger()
        l.charge(Category.UPDATE_RX, 1.0)
        l.charge(Category.UPDATE_RX, 2.5)
        assert l.total(Category.UPDATE_RX) == 3.5

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            CostLedger().charge(Category.USEFUL, -1.0)

    def test_unprefixed_category_rejected(self):
        with pytest.raises(ValueError):
            CostLedger().charge("misc", 1.0)

    def test_zero_charge_allowed(self):
        l = CostLedger()
        l.charge(Category.USEFUL, 0.0)
        assert l.F == 0.0

    def test_breakdown_is_copy(self):
        l = CostLedger()
        l.charge(Category.AUCTION, 2.0)
        b = l.breakdown()
        b[Category.AUCTION] = 99.0
        assert l.total(Category.AUCTION) == 2.0

    def test_all_g_categories_roll_into_G(self):
        l = CostLedger()
        cats = [
            Category.SCHEDULE,
            Category.UPDATE_RX,
            Category.ESTIMATOR,
            Category.POLL,
            Category.ADVERT,
            Category.AUCTION,
            Category.MIDDLEWARE,
            Category.COMPLETION,
        ]
        for c in cats:
            l.charge(c, 1.0)
        assert l.G == float(len(cats))
        assert l.F == 0.0 and l.H == 0.0


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(
                [
                    Category.USEFUL,
                    Category.SCHEDULE,
                    Category.POLL,
                    Category.ESTIMATOR,
                    Category.JOB_CONTROL,
                    Category.DATA_MGMT,
                ]
            ),
            st.floats(min_value=0, max_value=1e6, allow_nan=False),
        ),
        max_size=100,
    )
)
def test_fgh_partition_grand_total(charges):
    """F + G + H must always equal the grand total: every charge rolls
    into exactly one aggregate."""
    l = CostLedger()
    for cat, amt in charges:
        l.charge(cat, amt)
    assert l.F + l.G + l.H == pytest.approx(l.grand_total)
    assert l.grand_total == pytest.approx(sum(a for _, a in charges))
