"""Tests for the moldable-jobs extension (partition sizes > 1)."""

import pytest

from repro.core import CostLedger
from repro.grid import CostModel, JobState, Resource
from repro.grid.jobs import Job
from repro.sim import RngHub, Simulator
from repro.workload import JobSpec, WorkloadGenerator


def make_job(job_id, execution, partition=1, arrival=0.0):
    return Job(
        JobSpec(
            job_id=job_id,
            arrival_time=arrival,
            execution_time=execution,
            requested_time=execution * 2,
            benefit_factor=5.0,
            submit_cluster=0,
            job_class="LOCAL",
            partition_size=partition,
        )
    )


def make_resource(n_processors=4, speedup=0.8):
    sim = Simulator()
    res = Resource(
        sim, "r", 0, 0, 0, service_rate=1.0, ledger=CostLedger(),
        costs=CostModel(), n_processors=n_processors, speedup_exponent=speedup,
    )
    return sim, res


class TestMoldableResource:
    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Resource(sim, "r", 0, 0, 0, 1.0, CostLedger(), CostModel(), n_processors=0)
        with pytest.raises(ValueError):
            Resource(sim, "r", 0, 0, 0, 1.0, CostLedger(), CostModel(), speedup_exponent=0.0)

    def test_single_processor_unchanged(self):
        """partition 1 on a 1-processor resource: classic behaviour."""
        sim, res = make_resource(n_processors=1)
        a, b = make_job(0, 10.0), make_job(1, 10.0)
        for j in (a, b):
            j.mark_placed(0)
            res.accept_job(j)
        sim.run()
        assert a.completion_time == pytest.approx(10.0)
        assert b.completion_time == pytest.approx(20.0)  # serial

    def test_parallel_partitions_share_processors(self):
        """Two 2-wide jobs run concurrently on a 4-processor resource."""
        sim, res = make_resource(n_processors=4, speedup=1.0)
        a, b = make_job(0, 10.0, partition=2), make_job(1, 10.0, partition=2)
        for j in (a, b):
            j.mark_placed(0)
            res.accept_job(j)
        sim.run()
        # speedup exponent 1.0: p=2 runs 2x faster -> 5 units each,
        # both concurrently.
        assert a.completion_time == pytest.approx(5.0)
        assert b.completion_time == pytest.approx(5.0)

    def test_sublinear_speedup(self):
        sim, res = make_resource(n_processors=4, speedup=0.5)
        j = make_job(0, 16.0, partition=4)
        j.mark_placed(0)
        res.accept_job(j)
        sim.run()
        # speedup = 4**0.5 = 2 -> 8 time units
        assert j.completion_time == pytest.approx(8.0)

    def test_head_of_line_blocking(self):
        """A wide head job blocks narrower followers (FIFO semantics)."""
        sim, res = make_resource(n_processors=4, speedup=1.0)
        wide = make_job(0, 12.0, partition=4)
        narrow = make_job(1, 4.0, partition=1)
        for j in (wide, narrow):
            j.mark_placed(0)
            res.accept_job(j)
        sim.run()
        # wide: 12/4 = 3 units; narrow starts only after.
        assert wide.completion_time == pytest.approx(3.0)
        assert narrow.completion_time == pytest.approx(7.0)

    def test_oversized_partition_clamped(self):
        """A request wider than the machine is clamped to fit."""
        sim, res = make_resource(n_processors=2, speedup=1.0)
        j = make_job(0, 10.0, partition=8)
        j.mark_placed(0)
        res.accept_job(j)
        sim.run()
        assert j.state == JobState.COMPLETED
        assert j.completion_time == pytest.approx(5.0)  # p clamped to 2

    def test_load_counts_all_jobs_in_system(self):
        sim, res = make_resource(n_processors=4, speedup=1.0)
        for i in range(3):
            j = make_job(i, 100.0, partition=2)
            j.mark_placed(0)
            res.accept_job(j)
        # two running (2+2 procs), one queued
        assert res.load == 3
        assert res.free_processors == 0

    def test_util_stat_tracks_processor_fraction(self):
        sim, res = make_resource(n_processors=4, speedup=1.0)
        j = make_job(0, 40.0, partition=2)  # runs 20 units at 50% procs
        j.mark_placed(0)
        res.accept_job(j)
        sim.run(until=40.0)
        # busy 0.5 for 20 units, 0 for 20 -> mean 0.25
        assert res.util_stat.mean(40.0) == pytest.approx(0.25)


class TestMoldableWorkload:
    def test_default_partition_is_one(self):
        gen = WorkloadGenerator(rate=0.01, n_clusters=2)
        jobs = gen.generate(5000.0, RngHub(0).stream("wl"))
        assert all(j.partition_size == 1 for j in jobs)

    def test_partitions_are_powers_of_two_within_max(self):
        gen = WorkloadGenerator(rate=0.01, n_clusters=2, max_partition=8)
        jobs = gen.generate(20000.0, RngHub(1).stream("wl"))
        sizes = {j.partition_size for j in jobs}
        assert sizes <= {1, 2, 4, 8}
        assert len(sizes) > 1  # actually varied

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadGenerator(rate=0.01, n_clusters=1, max_partition=0)
