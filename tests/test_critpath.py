"""Unit tests for the critical-path analyzer (synthetic traces).

``decompose_job`` must telescope — the phase sum equals the recorded
turnaround for *any* ordered subset of lifecycle events, including
truncated traces — and the aggregation/ranking/latency helpers must
hold their shapes on edge inputs (no completions, single scale point,
empty histograms, overflow-only histograms).
"""

import math

import pytest

from repro.telemetry.collectors import Histogram, bucket_quantile, snapshot_collector
from repro.telemetry.critpath import (
    PHASES,
    aggregate_phases,
    decompose_job,
    growth_ranking,
    latency_quantiles,
    merge_latency,
    phase_shares,
)


def record(events, arrival=0.0, response=None):
    """A synthetic sampled-job record in the payload shape."""
    completion = next(
        (t for name, t in events if name == "complete"), None
    )
    if response is None and completion is not None:
        response = completion - arrival
    return {
        "arrival": arrival,
        "completion": completion,
        "response": response,
        "events": [{"name": name, "t": t} for name, t in events],
    }


FULL_LIFECYCLE = [
    ("sched_deliver", 2.0),
    ("decision_begin", 3.0),
    ("dispatch_send", 4.0),
    ("resource_accept", 5.0),
    ("service_begin", 6.0),
    ("complete", 10.0),
]


class TestDecompose:
    def test_full_lifecycle_phases(self):
        d = decompose_job(record(FULL_LIFECYCLE))
        assert d["phases"] == {
            "submit_wait": 2.0,
            "sched_queue": 1.0,
            "scheduling": 1.0,
            "dispatch_transit": 1.0,
            "resource_queue": 1.0,
            "service": 4.0,
        }
        assert d["response"] == 10.0
        assert d["residual"] == 0.0
        assert d["result_return"] is None

    def test_result_return_reported_separately(self):
        d = decompose_job(record(FULL_LIFECYCLE + [("result_return", 11.5)]))
        assert d["result_return"] == 1.5
        # post-completion transit never inflates the turnaround sum
        assert math.fsum(d["phases"].values()) == d["response"] == 10.0

    def test_truncated_trace_still_telescopes(self):
        # any ordered subset telescopes to completion - arrival: drops
        # only coarsen attribution into the preceding phase
        d = decompose_job(record([("sched_deliver", 2.0), ("complete", 10.0)]))
        assert d["phases"] == {"submit_wait": 2.0, "sched_queue": 8.0}
        assert d["residual"] == 0.0

    def test_recovery_interval_named_after_the_failure(self):
        d = decompose_job(
            record(
                [
                    ("sched_deliver", 1.0),
                    ("dispatch_send", 2.0),
                    ("service_begin", 3.0),
                    ("failed", 4.0),
                    ("redispatch", 9.0),
                    ("dispatch_send", 10.0),
                    ("service_begin", 11.0),
                    ("complete", 15.0),
                ]
            )
        )
        assert d["phases"]["recovery_wait"] == 5.0
        assert d["phases"]["service"] == 1.0 + 4.0  # both attempts
        assert d["residual"] == 0.0

    def test_unknown_event_lands_in_other(self):
        d = decompose_job(record([("mystery", 3.0), ("complete", 10.0)]))
        assert d["phases"]["other"] == 7.0

    def test_incomplete_job_returns_none(self):
        assert decompose_job(record([("sched_deliver", 2.0)])) is None
        rec = record(FULL_LIFECYCLE)
        rec["response"] = None
        assert decompose_job(rec) is None


class TestAggregate:
    def test_counts_and_totals(self):
        trace = {
            "jobs": {
                "1": record(FULL_LIFECYCLE),
                "2": record([("sched_deliver", 1.0), ("complete", 5.0)]),
                "3": record([("sched_deliver", 1.0)]),  # in flight at drain
            }
        }
        agg = aggregate_phases(trace)
        assert agg["jobs"] == 2 and agg["incomplete"] == 1
        assert agg["response_total"] == 15.0
        assert math.fsum(agg["phases"].values()) == pytest.approx(15.0)
        assert agg["max_residual"] == 0.0
        # phase key order follows the canonical taxonomy
        assert list(agg["phases"]) == [
            p for p in PHASES if p in agg["phases"]
        ]

    def test_shares_sum_to_one(self):
        agg = aggregate_phases({"jobs": {"1": record(FULL_LIFECYCLE)}})
        shares = phase_shares(agg["phases"])
        assert math.fsum(shares.values()) == pytest.approx(1.0)

    def test_shares_of_nothing_are_zero(self):
        assert phase_shares({"service": 0.0}) == {"service": 0.0}


class TestGrowthRanking:
    def test_fastest_growing_share_wins(self):
        points = [
            (1.0, {"service": 0.8, "resource_queue": 0.2}),
            (2.0, {"service": 0.6, "resource_queue": 0.4}),
            (3.0, {"service": 0.4, "resource_queue": 0.6}),
        ]
        ranking = growth_ranking(points)
        assert ranking[0] == ("resource_queue", pytest.approx(0.2))
        assert ranking[-1] == ("service", pytest.approx(-0.2))

    def test_single_point_ranks_flat(self):
        assert growth_ranking([(1.0, {"service": 1.0})]) == [("service", 0.0)]

    def test_missing_phase_reads_as_zero_share(self):
        points = [(1.0, {"park_wait": 0.5}), (2.0, {})]
        (name, slope), = growth_ranking(points)
        assert name == "park_wait" and slope == pytest.approx(-0.5)


class TestBucketQuantile:
    def test_empty_is_nan(self):
        assert math.isnan(bucket_quantile([1.0], [0], 0, 0.5))

    def test_exact_boundary_reports_the_bound(self):
        assert bucket_quantile([1.0, 2.0], [2, 2], 0, 0.5) == 1.0

    def test_interpolates_within_the_bucket(self):
        assert bucket_quantile([1.0, 2.0], [0, 4], 0, 0.5) == 1.5

    def test_overflow_region_is_inf(self):
        assert bucket_quantile([1.0], [1], 3, 0.9) == math.inf

    def test_inf_bucket_has_no_upper_edge(self):
        assert bucket_quantile([1.0, math.inf], [0, 4], 0, 0.5) == math.inf

    def test_negative_minimum_anchors_the_first_bucket(self):
        assert bucket_quantile([1.0], [2], 0, 0.0, minimum=-2.0) == -2.0

    def test_rejects_out_of_range_q(self):
        with pytest.raises(ValueError):
            bucket_quantile([1.0], [1], 0, 1.5)

    def test_histogram_quantile_delegates(self):
        hist = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for x in (0.5, 1.5, 1.5, 3.0):
            hist.record(x)
        snap = snapshot_collector(hist)
        assert snap["p50"] == hist.quantile(0.5)
        assert snap["p50"] <= snap["p95"] <= snap["p99"]


class TestMergeLatency:
    def _payload(self, values):
        hist = Histogram("latency.x", buckets=(1.0, 2.0, 4.0))
        for x in values:
            hist.record(x)
        return {"latency": {"x": snapshot_collector(hist)}}

    def test_merging_sums_buckets_and_recomputes_quantiles(self):
        a = self._payload([0.5, 1.5])
        b = self._payload([1.5, 3.0, 9.0])
        merged = merge_latency([a, b])
        snap = merged["x"]
        assert snap["count"] == 5
        assert snap["overflow"] == 1
        assert snap["min"] == 0.5 and snap["max"] == 9.0
        assert snap["mean"] == pytest.approx((0.5 + 1.5 + 1.5 + 3.0 + 9.0) / 5)
        assert snap["p50"] <= snap["p95"] <= snap["p99"]

    def test_merging_identical_runs_keeps_the_quantiles(self):
        one = merge_latency([self._payload([0.5, 1.5, 3.0])])
        two = merge_latency(
            [self._payload([0.5, 1.5, 3.0]), self._payload([0.5, 1.5, 3.0])]
        )
        assert two["x"]["count"] == 2 * one["x"]["count"]
        assert two["x"]["p50"] == one["x"]["p50"]
        assert two["x"]["p95"] == one["x"]["p95"]

    def test_table_rows_in_kind_order(self):
        merged = merge_latency([self._payload([1.0]), {"latency": {"a": self._payload([2.0])["latency"]["x"]}}])
        rows = latency_quantiles(merged)
        assert [r[0] for r in rows] == ["a", "x"]
        assert all(len(r) == 7 for r in rows)
