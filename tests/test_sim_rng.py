"""Tests for deterministic named RNG streams."""

import numpy as np

from repro.sim import RngHub


class TestRngHub:
    def test_same_name_same_generator_instance(self):
        hub = RngHub(1)
        assert hub.stream("a") is hub.stream("a")

    def test_reproducible_across_hubs(self):
        a = RngHub(123).stream("arrivals").random(8)
        b = RngHub(123).stream("arrivals").random(8)
        assert np.array_equal(a, b)

    def test_streams_independent_of_creation_order(self):
        h1 = RngHub(7)
        h2 = RngHub(7)
        _ = h2.stream("topology").random(100)  # consume another stream first
        a = h1.stream("arrivals").random(8)
        b = h2.stream("arrivals").random(8)
        assert np.array_equal(a, b)

    def test_different_names_differ(self):
        hub = RngHub(5)
        a = hub.stream("x").random(16)
        b = hub.stream("y").random(16)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngHub(1).stream("x").random(16)
        b = RngHub(2).stream("x").random(16)
        assert not np.array_equal(a, b)

    def test_fork_produces_independent_hub(self):
        hub = RngHub(9)
        f1 = hub.fork(1)
        f2 = hub.fork(2)
        a = hub.stream("x").random(8)
        b = f1.stream("x").random(8)
        c = f2.stream("x").random(8)
        assert not np.array_equal(a, b)
        assert not np.array_equal(b, c)

    def test_fork_is_deterministic(self):
        a = RngHub(9).fork(3).stream("x").random(8)
        b = RngHub(9).fork(3).stream("x").random(8)
        assert np.array_equal(a, b)
