"""Edge-case tests for the measurement procedure and result accessors."""

import pytest

from repro.core import (
    AnnealingSchedule,
    EfficiencyRecord,
    Enabler,
    EnablerSpace,
    ScalabilityProcedure,
    ScalingPath,
)


class Obs:
    def __init__(self, F, G, H, success=1.0):
        self.record = EfficiencyRecord(F=F, G=G, H=H)
        self.success_rate = success


def space():
    return EnablerSpace([Enabler("tau", (10.0, 20.0, 40.0), default_index=1)])


def run(system, scales=(1, 2)):
    proc = ScalabilityProcedure(
        system,
        space(),
        path=ScalingPath(scales),
        schedule=AnnealingSchedule(iterations=6, t0=0.5),
        seed=0,
    )
    return proc.run(name="X")


class TestBaseOutsideBand:
    def test_e0_adopts_achieved_base_efficiency(self):
        """A system whose healthy floor is far above the band must be
        measured against its own base (CENTRAL's situation)."""

        def high_e_system(k, settings):
            # G is tiny regardless of tau: efficiency ~0.9 everywhere.
            return Obs(F=900.0 * k, G=100.0 * k * (10.0 / settings["tau"]), H=5.0 * k)

        res = run(high_e_system)
        assert not res.base_feasible
        assert res.e0 == pytest.approx(res.points[0].efficiency)
        assert res.e0 > 0.6

    def test_degenerate_efficiency_falls_back_to_band_center(self):
        def broken(k, settings):
            return Obs(F=0.0, G=10.0, H=1.0, success=0.0)

        # base F = 0 -> E = 0; e0 falls back to the band center, the
        # base record still normalizes G/H (F=0 would break normalize),
        # so the procedure raises a clear error instead of nonsense.
        with pytest.raises(ValueError):
            run(broken)


class TestResultAccessors:
    def make(self):
        def proportional(k, settings):
            tau = settings["tau"]
            return Obs(F=100.0 * k, G=140.0 * k * (20.0 / tau), H=5.0 * k)

        return run(proportional, scales=(1, 2, 4))

    def test_scales_G_efficiencies(self):
        res = self.make()
        assert res.scales == (1, 2, 4)
        assert len(res.G) == 3
        assert len(res.efficiencies) == 3

    def test_feasible_through_prefix_semantics(self):
        res = self.make()
        # proportional system: feasible everywhere -> through the top
        assert res.feasible_through == 4

    def test_feasible_through_zero_when_base_fails(self):
        def awful(k, settings):
            return Obs(F=10.0, G=1000.0, H=1.0, success=0.1)

        res = run(awful)
        assert res.points[0].feasible is False
        assert res.feasible_through == 0.0

    def test_constants_match_base_point(self):
        res = self.make()
        base = res.points[0].record
        assert res.constants.e0 == pytest.approx(base.efficiency)
