"""Tests for experiment configuration and Table-1 constants."""

import pytest

from repro.experiments import PROFILES, CommonParameters, SimulationConfig
from repro.experiments.cases import CASES, get_case
from repro.core.scaling import (
    LINK_DELAY_SCALE,
    NEIGHBORHOOD_SIZE,
    UPDATE_INTERVAL,
    VOLUNTEER_INTERVAL,
)


class TestCommonParameters:
    """Table 1 of the paper, verbatim."""

    def test_t_cpu_is_700(self):
        assert CommonParameters().t_cpu == 700.0

    def test_t_l_is_half(self):
        assert CommonParameters().t_l == 0.5

    def test_benefit_range_2_to_5(self):
        c = CommonParameters()
        assert (c.benefit_lo, c.benefit_hi) == (2.0, 5.0)

    def test_efficiency_band(self):
        assert CommonParameters().efficiency_band == (0.38, 0.42)


class TestProfiles:
    def test_standard_profiles_exist(self):
        assert set(PROFILES) == {"ci", "full", "extreme"}

    def test_extreme_profile_reaches_1e5_resources(self):
        extreme = PROFILES["extreme"]
        top = max(extreme.scales)
        assert extreme.base_resources * top == 100_000
        # the cluster size — and so the status-scan decision cost —
        # must keep scheduler utilization under one at the profile rate
        cluster = extreme.base_resources / extreme.base_schedulers
        decision_cost = 1.0 + 0.6 * cluster
        rate_per_scheduler = extreme.base_rate_per_resource * cluster
        assert rate_per_scheduler * decision_cost < 1.0

    def test_full_profile_matches_paper_scale(self):
        full = PROFILES["full"]
        # 1000-node fixed network (Cases 2-4): resources + schedulers
        assert full.fixed_resources + full.fixed_schedulers == 1000
        assert full.scales == (1, 2, 3, 4, 5, 6)

    def test_ci_profile_is_smaller(self):
        ci, full = PROFILES["ci"], PROFILES["full"]
        assert ci.base_resources < full.base_resources
        assert ci.horizon < full.horizon

    def test_same_workload_intensity(self):
        """CI and full share per-resource intensity so shapes carry over."""
        assert PROFILES["ci"].base_rate_per_resource == PROFILES["full"].base_rate_per_resource


class TestSimulationConfig:
    def base(self, **kw):
        kw.setdefault("rms", "LOWEST")
        kw.setdefault("n_schedulers", 2)
        kw.setdefault("n_resources", 6)
        kw.setdefault("workload_rate", 0.01)
        return SimulationConfig(**kw)

    def test_validation(self):
        with pytest.raises(ValueError):
            self.base(n_schedulers=0)
        with pytest.raises(ValueError):
            self.base(n_resources=1)
        with pytest.raises(ValueError):
            self.base(workload_rate=0.0)
        with pytest.raises(ValueError):
            self.base(update_interval=0.0)
        with pytest.raises(ValueError):
            self.base(l_p=-1)
        with pytest.raises(ValueError):
            self.base(horizon=0.0)

    def test_with_enablers_applies_values(self):
        cfg = self.base().with_enablers(
            {
                UPDATE_INTERVAL: 12.0,
                NEIGHBORHOOD_SIZE: 5.0,
                LINK_DELAY_SCALE: 0.6,
                VOLUNTEER_INTERVAL: 80.0,
            }
        )
        assert cfg.update_interval == 12.0
        assert cfg.neighborhood_size == 5  # coerced to int
        assert cfg.link_delay_scale == 0.6
        assert cfg.volunteer_interval == 80.0

    def test_with_enablers_rejects_unknown(self):
        with pytest.raises(KeyError):
            self.base().with_enablers({"warp_factor": 9.0})

    def test_with_enablers_preserves_rest(self):
        cfg = self.base(l_p=5).with_enablers({UPDATE_INTERVAL: 10.0})
        assert cfg.l_p == 5 and cfg.rms == "LOWEST"

    def test_batch_window_defaults_to_half_tau(self):
        assert self.base(update_interval=10.0).effective_batch_window == 5.0

    def test_batch_window_explicit(self):
        cfg = self.base(update_interval=10.0, estimator_batch_window=0.0)
        assert cfg.effective_batch_window == 0.0


class TestCases:
    def test_four_cases(self):
        assert sorted(CASES) == [1, 2, 3, 4]

    def test_get_case_unknown(self):
        with pytest.raises(KeyError):
            get_case(9)

    def test_case1_scales_network_and_workload(self):
        case = get_case(1)
        prof = PROFILES["ci"]
        c1 = case.config_for("LOWEST", 1, prof)
        c3 = case.config_for("LOWEST", 3, prof)
        assert c3.n_resources == 3 * c1.n_resources
        assert c3.n_schedulers == 3 * c1.n_schedulers
        assert c3.workload_rate == pytest.approx(3 * c1.workload_rate)
        assert c3.service_rate == c1.service_rate == 1.0

    def test_case2_scales_service_rate_fixed_network(self):
        case = get_case(2)
        prof = PROFILES["ci"]
        c1, c4 = case.config_for("S-I", 1, prof), case.config_for("S-I", 4, prof)
        assert c4.n_resources == c1.n_resources == prof.fixed_resources
        assert c4.service_rate == 4.0
        assert c4.workload_rate == pytest.approx(4 * c1.workload_rate)

    def test_case3_scales_estimators(self):
        case = get_case(3)
        prof = PROFILES["ci"]
        c1, c2 = case.config_for("AUCTION", 1, prof), case.config_for("AUCTION", 2, prof)
        assert c1.n_estimators == prof.fixed_schedulers
        assert c2.n_estimators == 2 * prof.fixed_schedulers
        assert c2.n_resources == c1.n_resources

    def test_case4_scales_lp(self):
        case = get_case(4)
        prof = PROFILES["ci"]
        c1, c3 = case.config_for("R-I", 1, prof), case.config_for("R-I", 3, prof)
        assert c1.l_p == 2
        assert c3.l_p == 6

    def test_case4_enabler_space_has_volunteering(self):
        space = get_case(4).enabler_space()
        assert VOLUNTEER_INTERVAL in space
        assert NEIGHBORHOOD_SIZE not in space

    def test_cases_123_enabler_space_standard(self):
        for cid in (1, 2, 3):
            space = get_case(cid).enabler_space()
            assert UPDATE_INTERVAL in space
            assert NEIGHBORHOOD_SIZE in space
            assert LINK_DELAY_SCALE in space

    def test_path_follows_profile(self):
        assert tuple(get_case(1).path(PROFILES["ci"])) == PROFILES["ci"].scales
