"""Determinism tests: the correctness gate for the run cache.

The parallel engine's run cache and the jobs=N fan-out are sound only
if ``run_simulation`` is a *pure function* of its ``SimulationConfig``:
the same config (same seed) must produce byte-identical metrics in the
same process, in another process, and under a different interpreter
hash seed.  These tests pin that property for three structurally
different RMS designs — a fully distributed pull design (LOWEST), the
centralized design (CENTRAL), and a middleware-routed push design
(S-I) — so a regression in any substrate (topology, transport,
scheduler, estimator, middleware) trips it.
"""

import multiprocessing
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.experiments import SimulationConfig, run_simulation
from repro.experiments.parallel import ExperimentEngine, metrics_json_bytes
from repro.experiments.parallel.engine import _run_config

#: one design per mechanism family (pull / centralized / push+middleware)
DESIGNS = ["LOWEST", "CENTRAL", "S-I"]


def small_config(rms, **kw):
    """A small but non-trivial system (~10 ms per run)."""
    kw.setdefault("n_schedulers", 3)
    kw.setdefault("n_resources", 9)
    kw.setdefault("workload_rate", 0.004)
    kw.setdefault("horizon", 2000.0)
    kw.setdefault("drain", 3000.0)
    kw.setdefault("update_interval", 20.0)
    kw.setdefault("seed", 11)
    return SimulationConfig(rms=rms, **kw)


class TestInProcessDeterminism:
    @pytest.mark.parametrize("rms", DESIGNS)
    def test_two_runs_byte_identical(self, rms):
        a = run_simulation(small_config(rms))
        b = run_simulation(small_config(rms))
        assert metrics_json_bytes(a) == metrics_json_bytes(b)

    @pytest.mark.parametrize("rms", DESIGNS)
    def test_config_equality_implies_run_equality(self, rms):
        # configs built through different paths are the same run
        from dataclasses import replace

        direct = small_config(rms)
        rebuilt = replace(small_config(rms, seed=99), seed=11)
        assert metrics_json_bytes(run_simulation(direct)) == metrics_json_bytes(
            run_simulation(rebuilt)
        )


class TestCrossProcessDeterminism:
    @pytest.mark.parametrize("rms", DESIGNS)
    def test_subprocess_matches_parent(self, rms, monkeypatch):
        """A fresh spawned interpreter — different PID, different
        ``PYTHONHASHSEED`` — must reproduce the parent's run exactly."""
        monkeypatch.setenv("PYTHONHASHSEED", "12345")
        config = small_config(rms)
        parent = run_simulation(config)
        ctx = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(max_workers=1, mp_context=ctx) as pool:
            child = pool.submit(_run_config, config).result(timeout=120)
        assert metrics_json_bytes(parent) == metrics_json_bytes(child)

    def test_engine_pool_matches_serial(self):
        """The engine's worker-pool path returns exactly what the serial
        path does, config for config."""
        configs = [small_config("LOWEST", seed=s) for s in (1, 2, 3, 4)]
        with ExperimentEngine(jobs=2) as pooled:
            parallel = pooled.run_many(configs)
        serial = [run_simulation(c) for c in configs]
        assert [metrics_json_bytes(m) for m in parallel] == [
            metrics_json_bytes(m) for m in serial
        ]
