"""Tests for the synthetic (Mercator-substitute) topology generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import RngHub
from repro.topology import TopologyParams, generate_topology


def gen(n=50, seed=1, **kw):
    return generate_topology(TopologyParams(n_nodes=n, **kw), RngHub(seed).stream("topology"))


class TestParams:
    def test_too_few_nodes_rejected(self):
        with pytest.raises(ValueError):
            TopologyParams(n_nodes=1)

    def test_bad_attach_rejected(self):
        with pytest.raises(ValueError):
            TopologyParams(n_nodes=10, m_attach=0)

    def test_bad_waxman_rejected(self):
        with pytest.raises(ValueError):
            TopologyParams(n_nodes=10, waxman_alpha=1.5)
        with pytest.raises(ValueError):
            TopologyParams(n_nodes=10, waxman_beta=0.0)

    def test_bad_latency_rejected(self):
        with pytest.raises(ValueError):
            TopologyParams(n_nodes=10, min_latency=0.0)

    def test_empty_tiers_rejected(self):
        with pytest.raises(ValueError):
            TopologyParams(n_nodes=10, bandwidth_tiers=())


class TestGeneratedGraphs:
    def test_connected(self):
        assert gen(100).is_connected()

    def test_node_count(self):
        assert gen(73).n_nodes == 73

    def test_deterministic_for_seed(self):
        a, b = gen(40, seed=9), gen(40, seed=9)
        assert {(l.u, l.v, l.latency, l.bandwidth) for l in a.links()} == {
            (l.u, l.v, l.latency, l.bandwidth) for l in b.links()
        }

    def test_different_seeds_differ(self):
        a, b = gen(40, seed=1), gen(40, seed=2)
        assert {(l.u, l.v) for l in a.links()} != {(l.u, l.v) for l in b.links()}

    def test_latencies_respect_floor(self):
        t = gen(60, min_latency=0.5)
        assert all(l.latency >= 0.5 for l in t.links())

    def test_bandwidths_from_tiers(self):
        tiers = (7.0, 11.0)
        t = gen(60, bandwidth_tiers=tiers)
        assert all(l.bandwidth in tiers for l in t.links())

    def test_coords_attached(self):
        t = gen(30)
        assert t.coords is not None
        assert len(t.coords) == 30

    def test_degree_skew(self):
        """Preferential attachment should produce a heavier-than-uniform
        degree tail: max degree well above the mean."""
        t = gen(300, seed=3)
        degrees = np.array([t.degree(u) for u in range(t.n_nodes)])
        assert degrees.max() >= 3 * degrees.mean()

    def test_waxman_phase_adds_links(self):
        base = gen(200, seed=5, waxman_alpha=0.0)
        shortcut = gen(200, seed=5, waxman_alpha=0.5, waxman_beta=0.8)
        assert shortcut.n_links > base.n_links

    def test_min_edge_count(self):
        # PA phase alone contributes ~ m_attach links per node.
        t = gen(100, m_attach=2, waxman_alpha=0.0)
        assert t.n_links >= 100 - 2  # m = min(m_attach, existing)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=120),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    m=st.integers(min_value=1, max_value=4),
)
def test_always_connected_and_valid(n, seed, m):
    """Any parameterization yields a connected graph with positive link
    weights — the property the whole message plane depends on."""
    t = generate_topology(
        TopologyParams(n_nodes=n, m_attach=m), RngHub(seed).stream("topology")
    )
    assert t.is_connected()
    for link in t.links():
        assert link.latency > 0
        assert link.bandwidth > 0
        assert link.u != link.v
