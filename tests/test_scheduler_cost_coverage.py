"""Exhaustive coverage of the scheduler's message cost model.

Every message kind a scheduler can receive must have a well-defined
service time and ledger category — and the category must match the
paper's decomposition of G (scheduling vs updates vs polls vs adverts
vs auctions).
"""

import pytest

from repro.core import Category
from repro.network import Message, MessageKind

from helpers import MiniGrid


KIND_TO_CATEGORY = {
    MessageKind.JOB_SUBMIT: Category.SCHEDULE,
    MessageKind.JOB_TRANSFER: Category.SCHEDULE,
    MessageKind.STATUS_FORWARD: Category.UPDATE_RX,
    MessageKind.STATUS_UPDATE: Category.UPDATE_RX,
    MessageKind.POLL_REQUEST: Category.POLL,
    MessageKind.POLL_REPLY: Category.POLL,
    MessageKind.RESERVE_ADVERT: Category.ADVERT,
    MessageKind.RESERVE_PROBE: Category.ADVERT,
    MessageKind.RESERVE_REPLY: Category.ADVERT,
    MessageKind.RESERVE_CANCEL: Category.ADVERT,
    MessageKind.VOLUNTEER: Category.ADVERT,
    MessageKind.DEMAND: Category.ADVERT,
    MessageKind.DEMAND_REPLY: Category.ADVERT,
    MessageKind.AUCTION_INVITE: Category.AUCTION,
    MessageKind.AUCTION_BID: Category.AUCTION,
    MessageKind.AUCTION_AWARD: Category.AUCTION,
    MessageKind.JOB_COMPLETE: Category.COMPLETION,
    MessageKind.RESOURCE_DEAD: Category.FAULTS,
}


@pytest.fixture(scope="module")
def scheduler():
    return MiniGrid(n_clusters=1, resources_per_cluster=2).schedulers[0]


@pytest.mark.parametrize("kind,category", sorted(KIND_TO_CATEGORY.items()))
def test_kind_cost_and_category(scheduler, kind, category):
    msg = Message(kind)
    assert scheduler.service_time(msg) > 0.0
    assert scheduler.cost_category(msg) == category


def test_every_scheduler_kind_is_covered():
    """If a new protocol kind is added to MessageKind without a cost
    entry, this test forces the author to decide its G category."""
    scheduler_kinds = {
        v
        for k, v in vars(MessageKind).items()
        if not k.startswith("_")
        and isinstance(v, str)
        # resources and middleware handle these, not schedulers:
        and v not in (MessageKind.JOB_DISPATCH, MessageKind.MIDDLEWARE_RELAY)
    }
    assert scheduler_kinds == set(KIND_TO_CATEGORY)


def test_decision_kinds_use_dynamic_cost(scheduler):
    submit = scheduler.service_time(Message(MessageKind.JOB_SUBMIT))
    assert submit == pytest.approx(scheduler.decision_cost())


def test_all_categories_roll_into_G():
    from repro.core import CostLedger

    ledger = CostLedger()
    for category in set(KIND_TO_CATEGORY.values()):
        ledger.charge(category, 1.0)
    assert ledger.G == float(len(set(KIND_TO_CATEGORY.values())))
    assert ledger.F == 0.0 and ledger.H == 0.0
