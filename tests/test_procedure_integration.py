"""End-to-end integration: the measurement procedure over real
simulations (tiny systems, short paths) — slow-ish but the closest test
to the paper's actual experiment loop."""

import pytest

from repro.core.annealing import AnnealingSchedule
from repro.core.procedure import ScalabilityProcedure
from repro.core.scaling import (
    Enabler,
    EnablerSpace,
    ScalingPath,
    UPDATE_INTERVAL,
)
from repro.experiments import SimulationConfig, run_simulation


def make_simulate(rms):
    """A miniature Case-1-style closure: pool and workload scale with k."""

    def simulate(k, settings):
        cfg = SimulationConfig(
            rms=rms,
            n_schedulers=max(1, int(4 * k)),
            n_resources=int(12 * k),
            workload_rate=12 * 0.00028 * k,
            horizon=6000.0,
            drain=5000.0,
            seed=3,
        ).with_enablers(dict(settings))
        return run_simulation(cfg)

    return simulate


def small_space():
    return EnablerSpace(
        [Enabler(UPDATE_INTERVAL, (7.0, 8.5, 10.0, 13.0, 24.0, 60.0), default_index=1)]
    )


@pytest.mark.slow
class TestProcedureOverRealSimulations:
    def run(self, rms):
        proc = ScalabilityProcedure(
            make_simulate(rms),
            small_space(),
            path=ScalingPath((1, 2)),
            schedule=AnnealingSchedule(iterations=4, t0=0.5),
            seed=1,
        )
        return proc.run(name=rms)

    def test_distributed_design_measured_feasible(self):
        res = self.run("LOWEST")
        assert res.points[0].success_rate >= 0.85
        # Base efficiency lands near the band for the calibrated regime.
        assert 0.3 < res.e0 < 0.6
        # Normalized curves are well-formed.
        assert res.curves.f[0] == res.curves.g[0] == 1.0
        assert len(res.slopes.g_slopes) == 1

    def test_overhead_grows_with_scale(self):
        res = self.run("LOWEST")
        assert res.G[1] > res.G[0]

    def test_results_are_deterministic(self):
        a = self.run("S-I")
        b = self.run("S-I")
        assert a.G == b.G
        assert a.e0 == b.e0
        assert [p.settings for p in a.points] == [p.settings for p in b.points]
