"""Tests for the reliable-job-plane rules of the transport."""

import pytest

from repro.network import Message, MessageKind, Network, Router
from repro.network.transport import RELIABLE_KINDS, _effective_kind
from repro.sim import Entity, RngHub, Simulator
from repro.topology import Topology


class Inbox(Entity):
    def __init__(self, sim, name, node):
        super().__init__(sim, name, node)
        self.got = []

    def handle(self, message):
        self.got.append(message)


def lossy_net(loss=0.9, seed=0):
    sim = Simulator()
    topo = Topology(2)
    topo.add_link(0, 1, 0.5, 100.0)
    net = Network(
        sim, Router(topo), loss_probability=loss, rng=RngHub(seed).stream("loss")
    )
    return sim, net


class TestEffectiveKind:
    def test_plain_message(self):
        assert _effective_kind(Message(MessageKind.POLL_REQUEST)) == MessageKind.POLL_REQUEST

    def test_relay_unwraps_inner(self):
        inner = Message(MessageKind.JOB_TRANSFER)
        wrapper = Message(
            MessageKind.MIDDLEWARE_RELAY, payload={"inner": inner, "recipient": None}
        )
        assert _effective_kind(wrapper) == MessageKind.JOB_TRANSFER

    def test_relay_without_inner(self):
        wrapper = Message(MessageKind.MIDDLEWARE_RELAY, payload={})
        assert _effective_kind(wrapper) == MessageKind.MIDDLEWARE_RELAY


class TestReliability:
    def test_job_plane_never_dropped(self):
        sim, net = lossy_net(loss=0.9)
        dst = Inbox(sim, "dst", 1)
        for kind in RELIABLE_KINDS:
            for _ in range(30):
                net.send(Message(kind), 0, dst)
        sim.run()
        assert net.messages_dropped == 0
        assert len(dst.got) == 30 * len(RELIABLE_KINDS)

    def test_control_plane_dropped(self):
        sim, net = lossy_net(loss=0.9)
        dst = Inbox(sim, "dst", 1)
        for _ in range(100):
            net.send(Message(MessageKind.STATUS_UPDATE), 0, dst)
        sim.run()
        assert net.messages_dropped > 60

    def test_relayed_transfer_reliable_but_relayed_poll_lossy(self):
        sim, net = lossy_net(loss=0.9, seed=1)
        dst = Inbox(sim, "dst", 1)
        for _ in range(50):
            inner = Message(MessageKind.JOB_TRANSFER)
            net.send(
                Message(
                    MessageKind.MIDDLEWARE_RELAY,
                    payload={"inner": inner, "recipient": dst},
                ),
                0,
                dst,
            )
        assert net.messages_dropped == 0
        for _ in range(50):
            inner = Message(MessageKind.POLL_REQUEST)
            net.send(
                Message(
                    MessageKind.MIDDLEWARE_RELAY,
                    payload={"inner": inner, "recipient": dst},
                ),
                0,
                dst,
            )
        assert net.messages_dropped > 25

    def test_reliable_kinds_cover_job_plane(self):
        assert RELIABLE_KINDS == {
            MessageKind.JOB_SUBMIT,
            MessageKind.JOB_DISPATCH,
            MessageKind.JOB_TRANSFER,
            MessageKind.JOB_COMPLETE,
            # losing a dead-resource declaration would strand the
            # victim's jobs forever, so it rides the reliable plane too
            MessageKind.RESOURCE_DEAD,
        }


class TestNoStrandedJobs:
    """No protocol may strand a job under heavy link loss.

    The job plane is reliable by construction, so even at 25-50% loss
    every submitted job must eventually complete.  This promotes the
    assertion from ``examples/failure_injection.py`` into the suite.
    """

    @pytest.mark.parametrize("loss", [0.25, 0.5])
    @pytest.mark.parametrize(
        "rms", ["CENTRAL", "LOWEST", "RESERVE", "AUCTION", "S-I", "R-I", "Sy-I"]
    )
    def test_all_jobs_complete_under_loss(self, rms, loss):
        from repro.experiments import SimulationConfig, run_simulation
        from repro.faults import FaultPlan

        config = SimulationConfig(
            rms=rms,
            n_schedulers=2,
            n_resources=6,
            workload_rate=0.004,
            horizon=1500.0,
            drain=8000.0,
            seed=11,
            faults=FaultPlan(link_loss=loss),
        )
        metrics = run_simulation(config)
        assert metrics.jobs_submitted > 0
        assert metrics.jobs_completed == metrics.jobs_submitted
