"""Tests for the reliable-job-plane rules of the transport."""

import pytest

from repro.network import Message, MessageKind, Network, Router
from repro.network.transport import RELIABLE_KINDS, _effective_kind
from repro.sim import Entity, RngHub, Simulator
from repro.topology import Topology


class Inbox(Entity):
    def __init__(self, sim, name, node):
        super().__init__(sim, name, node)
        self.got = []

    def handle(self, message):
        self.got.append(message)


def lossy_net(loss=0.9, seed=0):
    sim = Simulator()
    topo = Topology(2)
    topo.add_link(0, 1, 0.5, 100.0)
    net = Network(
        sim, Router(topo), loss_probability=loss, rng=RngHub(seed).stream("loss")
    )
    return sim, net


class TestEffectiveKind:
    def test_plain_message(self):
        assert _effective_kind(Message(MessageKind.POLL_REQUEST)) == MessageKind.POLL_REQUEST

    def test_relay_unwraps_inner(self):
        inner = Message(MessageKind.JOB_TRANSFER)
        wrapper = Message(
            MessageKind.MIDDLEWARE_RELAY, payload={"inner": inner, "recipient": None}
        )
        assert _effective_kind(wrapper) == MessageKind.JOB_TRANSFER

    def test_relay_without_inner(self):
        wrapper = Message(MessageKind.MIDDLEWARE_RELAY, payload={})
        assert _effective_kind(wrapper) == MessageKind.MIDDLEWARE_RELAY


class TestReliability:
    def test_job_plane_never_dropped(self):
        sim, net = lossy_net(loss=0.9)
        dst = Inbox(sim, "dst", 1)
        for kind in RELIABLE_KINDS:
            for _ in range(30):
                net.send(Message(kind), 0, dst)
        sim.run()
        assert net.messages_dropped == 0
        assert len(dst.got) == 30 * len(RELIABLE_KINDS)

    def test_control_plane_dropped(self):
        sim, net = lossy_net(loss=0.9)
        dst = Inbox(sim, "dst", 1)
        for _ in range(100):
            net.send(Message(MessageKind.STATUS_UPDATE), 0, dst)
        sim.run()
        assert net.messages_dropped > 60

    def test_relayed_transfer_reliable_but_relayed_poll_lossy(self):
        sim, net = lossy_net(loss=0.9, seed=1)
        dst = Inbox(sim, "dst", 1)
        for _ in range(50):
            inner = Message(MessageKind.JOB_TRANSFER)
            net.send(
                Message(
                    MessageKind.MIDDLEWARE_RELAY,
                    payload={"inner": inner, "recipient": dst},
                ),
                0,
                dst,
            )
        assert net.messages_dropped == 0
        for _ in range(50):
            inner = Message(MessageKind.POLL_REQUEST)
            net.send(
                Message(
                    MessageKind.MIDDLEWARE_RELAY,
                    payload={"inner": inner, "recipient": dst},
                ),
                0,
                dst,
            )
        assert net.messages_dropped > 25

    def test_reliable_kinds_cover_job_plane(self):
        assert RELIABLE_KINDS == {
            MessageKind.JOB_SUBMIT,
            MessageKind.JOB_DISPATCH,
            MessageKind.JOB_TRANSFER,
            MessageKind.JOB_COMPLETE,
        }
