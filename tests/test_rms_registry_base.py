"""Tests for the RMS registry and shared policy machinery."""

import pytest

from repro.grid import JobState
from repro.rms import (
    ALL_RMS,
    PollBook,
    RMS_BY_NAME,
    get_rms,
    rms_names,
    unpark_for_transfer,
)

from helpers import MiniGrid, make_job


class TestRegistry:
    def test_seven_designs_in_paper_order(self):
        assert rms_names() == ["CENTRAL", "LOWEST", "RESERVE", "AUCTION", "S-I", "R-I", "Sy-I"]

    def test_lookup_case_insensitive(self):
        assert get_rms("lowest").name == "LOWEST"
        assert get_rms("SY-I").name == "Sy-I"
        assert get_rms("CENTRAL").name == "CENTRAL"

    def test_unknown_name_raises_with_hint(self):
        with pytest.raises(KeyError, match="valid"):
            get_rms("FIFO")

    def test_only_central_is_centralized(self):
        assert [i.name for i in ALL_RMS if i.centralized] == ["CENTRAL"]

    def test_supersschedulers_use_middleware(self):
        mw = {i.name for i in ALL_RMS if i.uses_middleware}
        assert mw == {"S-I", "R-I", "Sy-I"}

    def test_mechanism_classification(self):
        mech = {i.name: i.mechanism for i in ALL_RMS}
        assert mech["LOWEST"] == "pull" and mech["S-I"] == "pull"
        assert mech["RESERVE"] == "push" and mech["R-I"] == "push"
        assert mech["AUCTION"] == "hybrid" and mech["Sy-I"] == "hybrid"
        assert mech["CENTRAL"] == "central"

    def test_volunteering_designs(self):
        vol = {i.name for i in ALL_RMS if i.uses_volunteering}
        assert vol == {"RESERVE", "AUCTION", "R-I", "Sy-I"}

    def test_registry_names_unique(self):
        names = [i.name for i in ALL_RMS]
        assert len(names) == len(set(names)) == 7
        # extension baselines may also be registered by other tests, but
        # the paper's seven are always present
        assert set(names) <= set(RMS_BY_NAME)


class TestUnpark:
    def test_unpark_waiting_job(self):
        j = make_job()
        j.mark_waiting()
        unpark_for_transfer(j)
        assert j.state == JobState.SUBMITTED

    def test_unpark_noop_on_other_states(self):
        j = make_job()
        unpark_for_transfer(j)
        assert j.state == JobState.SUBMITTED
        j.mark_placed(0)
        unpark_for_transfer(j)
        assert j.state == JobState.PLACED


class TestPollBook:
    def make_book(self, timeout=10.0):
        g = MiniGrid(n_clusters=2, resources_per_cluster=1)
        decided = []
        book = PollBook(g.schedulers[0], timeout, decided.append)
        return g, book, decided

    def test_zero_expected_decides_immediately(self):
        g, book, decided = self.make_book()
        job = make_job()
        book.open(job, expected=0)
        assert len(decided) == 1
        assert decided[0].job is job
        assert decided[0].replies == []

    def test_fanin_completion_triggers_decide(self):
        g, book, decided = self.make_book()
        job = make_job()
        book.open(job, expected=2)
        peer = g.schedulers[1]
        book.record_reply(job.job_id, peer, {"x": 1})
        assert decided == []
        book.record_reply(job.job_id, peer, {"x": 2})
        assert len(decided) == 1
        assert len(decided[0].replies) == 2

    def test_timeout_decides_with_partial_replies(self):
        g, book, decided = self.make_book(timeout=10.0)
        job = make_job()
        book.open(job, expected=3)
        book.record_reply(job.job_id, g.schedulers[1], {"x": 1})
        g.sim.run(until=20.0)
        assert len(decided) == 1
        assert len(decided[0].replies) == 1

    def test_no_double_decide(self):
        g, book, decided = self.make_book(timeout=10.0)
        job = make_job()
        book.open(job, expected=1)
        book.record_reply(job.job_id, g.schedulers[1], {})
        g.sim.run(until=20.0)  # timeout fires after decision
        assert len(decided) == 1

    def test_late_and_unknown_replies_dropped(self):
        g, book, decided = self.make_book()
        job = make_job()
        book.open(job, expected=1)
        book.record_reply(999, g.schedulers[1], {})  # unknown job
        assert decided == []
        book.record_reply(job.job_id, g.schedulers[1], {})
        book.record_reply(job.job_id, g.schedulers[1], {})  # after close
        assert len(decided) == 1
        assert len(decided[0].replies) == 1

    def test_open_count_tracks_pending(self):
        g, book, decided = self.make_book()
        a, b = make_job(), make_job()
        book.open(a, expected=1)
        book.open(b, expected=1)
        assert book.open_count == 2
        book.record_reply(a.job_id, g.schedulers[1], {})
        assert book.open_count == 1

    def test_bad_timeout_rejected(self):
        g = MiniGrid(n_clusters=1, resources_per_cluster=1)
        with pytest.raises(ValueError):
            PollBook(g.schedulers[0], 0.0, lambda p: None)
