"""Unit and property tests for the event queue primitives."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.events import Event, EventQueue


def make_event(time, seq):
    return Event(time, seq, lambda: None, ())


class TestEventOrdering:
    def test_earlier_time_wins(self):
        assert make_event(1.0, 5) < make_event(2.0, 0)

    def test_seq_breaks_ties(self):
        assert make_event(1.0, 0) < make_event(1.0, 1)
        assert not (make_event(1.0, 1) < make_event(1.0, 0))

    def test_cancel_is_idempotent(self):
        ev = make_event(1.0, 0)
        assert not ev.cancelled
        ev.cancel()
        assert ev.cancelled
        ev.cancel()
        assert ev.cancelled

    def test_cancel_drops_references(self):
        payload = object()
        ev = Event(1.0, 0, lambda x: None, (payload,))
        ev.cancel()
        assert ev.args == ()
        assert ev.fn is None


class TestEventQueue:
    def test_pop_in_time_order(self):
        q = EventQueue()
        for t, s in [(3.0, 0), (1.0, 1), (2.0, 2)]:
            q.push(make_event(t, s))
        times = [q.pop().time for _ in range(3)]
        assert times == [1.0, 2.0, 3.0]

    def test_pop_empty_raises(self):
        q = EventQueue()
        with pytest.raises(IndexError):
            q.pop()

    def test_len_tracks_live_events(self):
        q = EventQueue()
        evs = [make_event(float(i), i) for i in range(4)]
        for ev in evs:
            q.push(ev)
        assert len(q) == 4
        evs[0].cancel()
        q.note_cancelled()
        assert len(q) == 3
        assert bool(q)

    def test_cancelled_events_are_skipped(self):
        q = EventQueue()
        evs = [make_event(float(i), i) for i in range(5)]
        for ev in evs:
            q.push(ev)
        for ev in evs[:3]:
            ev.cancel()
            q.note_cancelled()
        assert q.pop().time == 3.0
        assert q.pop().time == 4.0

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        a = make_event(1.0, 0)
        b = make_event(2.0, 1)
        q.push(a)
        q.push(b)
        a.cancel()
        q.note_cancelled()
        assert q.peek_time() == 2.0

    def test_peek_time_empty(self):
        assert EventQueue().peek_time() is None

    def test_compaction_preserves_survivors(self):
        q = EventQueue()
        evs = [make_event(float(i), i) for i in range(200)]
        for ev in evs:
            q.push(ev)
        # Cancel all even-seq events: more than half after a while,
        # triggering the O(n) compaction path.
        for ev in evs[:150]:
            ev.cancel()
            q.note_cancelled()
        popped = []
        while q:
            popped.append(q.pop().time)
        assert popped == [float(i) for i in range(150, 200)]


class TestCancellationAccounting:
    """Regression tests for the live-count drift bug.

    Historically, ``event.cancel()`` + ``note_cancelled()`` could
    double-decrement the live count (cancel an event twice, note twice),
    driving ``_live`` negative and suppressing compaction forever.  The
    fixes: :meth:`EventQueue.cancel` is the idempotent entry point,
    :meth:`EventQueue.push` rejects dead events, and compaction recounts
    ``_live`` from the rebuilt heap instead of trusting the counter.
    """

    def test_queue_cancel_is_idempotent(self):
        q = EventQueue()
        ev = make_event(1.0, 0)
        q.push(ev)
        assert q.cancel(ev) is True
        assert len(q) == 0
        # Second cancel: already dead — refused, count untouched.
        assert q.cancel(ev) is False
        assert len(q) == 0

    def test_queue_cancel_after_pop_is_refused(self):
        q = EventQueue()
        ev = make_event(1.0, 0)
        q.push(ev)
        popped = q.pop()
        assert popped is ev
        # A fired event was already removed from the live count; a late
        # cancel must not decrement it again.
        ev.cancel()
        assert q.cancel(ev) is False
        assert len(q) == 0

    def test_push_of_dead_event_raises(self):
        q = EventQueue()
        ev = make_event(1.0, 0)
        ev.cancel()
        with pytest.raises(ValueError):
            q.push(ev)
        assert len(q) == 0

    def test_compaction_recount_heals_drift(self):
        # Simulate the historical double-note bug: drive the counter
        # below truth, then trigger compaction and check it resyncs.
        q = EventQueue()
        evs = [make_event(float(i), i) for i in range(200)]
        for ev in evs:
            q.push(ev)
        for ev in evs[:120]:
            ev.cancel()
            q.note_cancelled()
        # Inject drift: extra notes without marks (the old bug).  The
        # counter sinks below ground truth (80 live events remain) until
        # it crosses the compaction trigger — at which point the rebuild
        # recounts from the heap and pins the count back to truth.
        for _ in range(40):
            q.note_cancelled()
            if len(q) == 80:
                break  # compaction fired and resynchronized the count
        assert len(q) == 80
        popped = []
        while q:
            popped.append(q.pop().time)
        assert popped == [float(i) for i in range(120, 200)]
        assert len(q) == 0

    def test_drift_cannot_suppress_compaction_forever(self):
        # With a negative counter the old trigger (live < total//2)
        # fired spuriously or never; after healing, a later genuine
        # cancel wave must still compact and pop correctly.
        q = EventQueue()
        evs = [make_event(float(i), i) for i in range(300)]
        for ev in evs:
            q.push(ev)
        for _ in range(5):  # phantom notes before any real cancel
            q.note_cancelled()
        for ev in evs[:250]:
            q.cancel(ev)
        assert len(q) == 50
        assert [q.pop().seq for _ in range(50)] == list(range(250, 300))


@settings(max_examples=200, deadline=None)
@given(
    st.lists(
        st.tuples(st.floats(min_value=0, max_value=1e6, allow_nan=False), st.booleans()),
        max_size=60,
    )
)
def test_queue_is_stable_total_order(entries):
    """Popped order must be sorted by (time, insertion index), skipping
    cancelled entries — for any pattern of pushes and cancellations."""
    q = EventQueue()
    events = []
    for i, (t, cancel) in enumerate(entries):
        ev = make_event(t, i)
        q.push(ev)
        events.append((ev, cancel))
    for ev, cancel in events:
        if cancel:
            ev.cancel()
            q.note_cancelled()
    expected = sorted(
        ((ev.time, ev.seq) for ev, cancel in events if not cancel),
    )
    got = []
    while q:
        ev = q.pop()
        got.append((ev.time, ev.seq))
    assert got == expected
