"""Golden snapshot of the CLI surface (every subcommand's flags).

The shared-parent refactor must not silently drop, rename, or retype a
flag, so the *structured* parser metadata — option strings, metavars,
choices, defaults — is snapshotted per subcommand in
``tests/data/cli_surface.json``.  Snapshotting structure instead of
rendered ``--help`` text keeps the golden file stable across argparse
formatting changes between Python versions.

On a deliberate surface change, regenerate with::

    REPRO_UPDATE_SNAPSHOTS=1 PYTHONPATH=src python -m pytest tests/test_cli_surface.py
"""

import argparse
import json
import os
from pathlib import Path

import pytest

from repro.experiments.cli import build_parser

SNAPSHOT = Path(__file__).parent / "data" / "cli_surface.json"


def _action_surface(action):
    """The stable identity of one argparse action."""
    return {
        "options": list(action.option_strings),
        "dest": action.dest,
        "metavar": action.metavar,
        "choices": None if action.choices is None else sorted(map(str, action.choices)),
        "nargs": None if action.nargs is None else str(action.nargs),
        "type": getattr(action.type, "__name__", None) if action.type else None,
        "default": repr(action.default),
        "required": bool(action.required),
        "kind": type(action).__name__,
    }


def _subparsers_of(parser):
    return next(
        (a for a in parser._actions
         if isinstance(a, argparse._SubParsersAction)),
        None,
    )


def _parser_surface(parser):
    surface = {
        "arguments": [
            _action_surface(a)
            for a in parser._actions
            if not isinstance(a, (argparse._HelpAction, argparse._SubParsersAction))
        ]
    }
    sub = _subparsers_of(parser)
    if sub is not None:
        surface["subcommands"] = {
            name: _parser_surface(p) for name, p in sub.choices.items()
        }
    return surface


def current_surface():
    return _parser_surface(build_parser())


class TestSurfaceSnapshot:
    def test_surface_matches_snapshot(self):
        surface = current_surface()
        if os.environ.get("REPRO_UPDATE_SNAPSHOTS"):
            SNAPSHOT.parent.mkdir(parents=True, exist_ok=True)
            SNAPSHOT.write_text(
                json.dumps(surface, indent=1, sort_keys=True) + "\n", "utf-8"
            )
        assert SNAPSHOT.exists(), (
            "no golden snapshot — generate one with REPRO_UPDATE_SNAPSHOTS=1"
        )
        golden = json.loads(SNAPSHOT.read_text("utf-8"))
        assert surface == golden, (
            "CLI surface drifted from tests/data/cli_surface.json; if the "
            "change is deliberate, regenerate with REPRO_UPDATE_SNAPSHOTS=1"
        )

    def test_every_simulation_subcommand_shares_the_engine_flags(self):
        """The shared-parent contract: the engine/execution flags exist,
        spelled identically, on every simulation-running subcommand."""
        shared = {
            "--jobs", "--no-cache", "--cache-dir", "--telemetry",
            "--telemetry-dir", "--flight-recorder", "--flight-dir",
            "--kernel-backend", "--traffic-mode", "--aggregator-fanout",
        }
        study = {"--rms", "--seed"}
        sub = _subparsers_of(build_parser())
        for name in ("figure", "compare", "faults", "series", "trace", "submit"):
            options = {
                opt
                for action in sub.choices[name]._actions
                for opt in action.option_strings
            }
            missing = (shared | study) - options
            assert not missing, f"`repro {name}` lacks shared flags: {sorted(missing)}"

    def test_engine_defaults_come_from_the_spec(self):
        """Parser defaults cannot drift from StudySpec defaults."""
        import dataclasses

        from repro.experiments.spec import StudySpec

        spec_defaults = {f.name: f.default for f in dataclasses.fields(StudySpec)}
        sub = _subparsers_of(build_parser())
        fig = sub.choices["figure"]
        for action in fig._actions:
            if action.dest in ("jobs", "cache_dir", "kernel_backend",
                               "traffic_mode", "aggregator_fanout", "seed"):
                assert action.default == spec_defaults[action.dest], action.dest

    @pytest.mark.parametrize(
        "name",
        ["figure", "compare", "faults", "series", "trace",
         "serve", "work", "submit", "knobs", "watch",
         "bench-perf", "bench-check", "attrib", "telemetry", "list"],
    )
    def test_help_renders(self, name):
        """Smoke: every subcommand's --help text renders and names its
        long options (the human-facing half of the snapshot)."""
        sub = _subparsers_of(build_parser())
        parser = sub.choices[name]
        text = parser.format_help()
        for action in parser._actions:
            for opt in action.option_strings:
                if opt.startswith("--"):
                    assert opt in text
