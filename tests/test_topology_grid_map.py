"""Tests for Grid element placement and clustering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import RngHub
from repro.topology import TopologyParams, generate_topology, map_grid


def topo(n=60, seed=2):
    return generate_topology(TopologyParams(n_nodes=n), RngHub(seed).stream("topology"))


class TestMapGrid:
    def test_basic_shape(self):
        gm = map_grid(topo(), n_schedulers=4, n_resources=40)
        assert gm.n_schedulers == 4
        assert gm.n_resources == 40
        assert gm.n_estimators == 4  # defaults to one per scheduler

    def test_validation_passes(self):
        map_grid(topo(), n_schedulers=5, n_resources=30).validate()

    def test_clusters_partition_resources(self):
        gm = map_grid(topo(), n_schedulers=4, n_resources=40)
        all_rs = sorted(r for rs in gm.resources_of_cluster.values() for r in rs)
        assert all_rs == list(range(40))

    def test_no_empty_cluster(self):
        gm = map_grid(topo(), n_schedulers=8, n_resources=9)
        assert all(gm.resources_of_cluster[s] for s in range(8))

    def test_schedulers_at_high_degree_nodes(self):
        t = topo()
        gm = map_grid(t, n_schedulers=3, n_resources=20)
        degrees = sorted((t.degree(u) for u in range(t.n_nodes)), reverse=True)
        chosen = sorted((t.degree(u) for u in gm.scheduler_nodes), reverse=True)
        assert chosen == degrees[:3]

    def test_base_estimators_colocated_with_schedulers(self):
        gm = map_grid(topo(), n_schedulers=4, n_resources=20)
        assert gm.estimator_nodes == gm.scheduler_nodes

    def test_extra_estimators_cover_clusters_round_robin(self):
        gm = map_grid(topo(), n_schedulers=2, n_resources=20, n_estimators=6)
        assert gm.n_estimators == 6
        # extras sit at the scheduler site of the cluster they cover
        assert gm.estimator_nodes[2] == gm.scheduler_nodes[0]
        assert gm.estimator_nodes[3] == gm.scheduler_nodes[1]
        # each extra covers exactly one cluster
        for e in range(2, 6):
            assert gm.schedulers_of_estimator[e] == [(e - 2) % 2]

    def test_base_estimators_give_one_per_cluster(self):
        gm = map_grid(topo(), n_schedulers=4, n_resources=20)
        for r in range(20):
            assert gm.estimator_of_resource[r] == gm.cluster_of_resource[r]

    def test_cluster_sizes_balanced(self):
        gm = map_grid(topo(), n_schedulers=4, n_resources=22)
        sizes = sorted(len(rs) for rs in gm.resources_of_cluster.values())
        assert sizes[-1] - sizes[0] <= 1 or sizes[-1] <= -(-22 // 4)

    def test_fewer_estimators_than_schedulers_keep_clusters_whole(self):
        gm = map_grid(topo(), n_schedulers=4, n_resources=20, n_estimators=2)
        for r in range(20):
            assert gm.estimator_of_resource[r] == gm.cluster_of_resource[r] % 2

    def test_every_estimator_coverage_consistent(self):
        gm = map_grid(topo(), n_schedulers=3, n_resources=24, n_estimators=5)
        for r in range(24):
            e = gm.estimator_of_resource[r]
            assert gm.cluster_of_resource[r] in gm.schedulers_of_estimator[e]

    def test_more_resources_than_routers_colocate(self):
        gm = map_grid(topo(n=20), n_schedulers=2, n_resources=100)
        assert gm.n_resources == 100
        assert all(0 <= node < 20 for node in gm.resource_nodes)

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            map_grid(topo(), n_schedulers=0, n_resources=5)
        with pytest.raises(ValueError):
            map_grid(topo(), n_schedulers=5, n_resources=4)
        with pytest.raises(ValueError):
            map_grid(topo(), n_schedulers=2, n_resources=5, n_estimators=0)

    def test_deterministic(self):
        a = map_grid(topo(seed=7), n_schedulers=4, n_resources=30, n_estimators=6)
        b = map_grid(topo(seed=7), n_schedulers=4, n_resources=30, n_estimators=6)
        assert a.scheduler_nodes == b.scheduler_nodes
        assert a.resource_nodes == b.resource_nodes
        assert a.cluster_of_resource == b.cluster_of_resource
        assert a.estimator_of_resource == b.estimator_of_resource


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=6, max_value=80),
    seed=st.integers(min_value=0, max_value=5_000),
    n_sched=st.integers(min_value=1, max_value=6),
    extra_est=st.integers(min_value=0, max_value=5),
)
def test_map_grid_invariants(n, seed, n_sched, extra_est):
    """validate() must hold for arbitrary feasible configurations."""
    n_res = max(n_sched, n // 2)
    gm = map_grid(
        topo(n=n, seed=seed),
        n_schedulers=n_sched,
        n_resources=n_res,
        n_estimators=n_sched + extra_est,
    )
    gm.validate()
    # every resource's node is a valid router
    assert all(0 <= node < n for node in gm.resource_nodes)
