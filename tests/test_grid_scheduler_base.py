"""Tests for SchedulerBase: costing, dispatch, primitives."""

import pytest

from repro.core import Category
from repro.grid import JobState
from repro.network import Message, MessageKind
from repro.workload import JobClass

from helpers import MiniGrid, make_job


class TestCosting:
    def test_decision_cost_scales_with_table(self):
        small = MiniGrid(n_clusters=1, resources_per_cluster=2).schedulers[0]
        big = MiniGrid(n_clusters=1, resources_per_cluster=50).schedulers[0]
        assert big.decision_cost() > small.decision_cost()
        assert big.decision_cost() == pytest.approx(
            big.costs.decision_base + 50 * big.costs.scan_per_entry
        )

    def test_submit_charged_to_schedule(self):
        g = MiniGrid(n_clusters=1, resources_per_cluster=2)
        job = make_job()
        g.submit(job)
        g.sim.run()
        assert g.ledger.total(Category.SCHEDULE) >= g.schedulers[0].decision_cost() - 1e-9

    def test_unknown_kind_costing_raises(self):
        g = MiniGrid(n_clusters=1, resources_per_cluster=1)
        with pytest.raises(ValueError):
            g.schedulers[0].service_time(Message("exotic"))

    def test_flat_costs_mapped(self):
        g = MiniGrid(n_clusters=1, resources_per_cluster=1)
        s = g.schedulers[0]
        assert s.service_time(Message(MessageKind.POLL_REQUEST)) == g.costs.poll_proc
        assert s.cost_category(Message(MessageKind.POLL_REQUEST)) == Category.POLL
        assert s.service_time(Message(MessageKind.JOB_COMPLETE)) == g.costs.completion_proc
        assert s.cost_category(Message(MessageKind.AUCTION_BID)) == Category.AUCTION


class TestLocalScheduling:
    def test_local_job_completes(self):
        g = MiniGrid(n_clusters=1, resources_per_cluster=2)
        job = make_job(execution=20.0)
        g.submit(job)
        g.sim.run()
        assert job.state == JobState.COMPLETED
        assert job.executed_cluster == 0
        assert g.schedulers[0].jobs_dispatched_local == 1

    def test_least_loaded_resource_chosen(self):
        g = MiniGrid(n_clusters=1, resources_per_cluster=3)
        s = g.schedulers[0]
        s.table.record(0, 5.0, 0.0)
        s.table.record(1, 1.0, 0.0)
        s.table.record(2, 3.0, 0.0)
        job = make_job(execution=1000.0)
        g.submit(job)
        g.sim.run(until=50.0)
        assert g.resources[1].jobs_received == 1

    def test_optimistic_bump_spreads_consecutive_jobs(self):
        g = MiniGrid(n_clusters=1, resources_per_cluster=3)
        jobs = [make_job(execution=500.0) for _ in range(3)]
        for j in jobs:
            g.submit(j)
        g.sim.run(until=100.0)
        # With bumps, the three jobs land on three distinct resources.
        assert sorted(r.jobs_received for r in g.resources) == [1, 1, 1]

    def test_default_remote_class_runs_locally(self):
        g = MiniGrid(n_clusters=2, resources_per_cluster=2)
        job = make_job(execution=900.0, job_class=JobClass.REMOTE)
        g.submit(job, cluster=0)
        g.sim.run()
        assert job.executed_cluster == 0
        assert job.transfers == 0

    def test_job_transfer_schedules_locally(self):
        g = MiniGrid(n_clusters=2, resources_per_cluster=2)
        a, b = g.schedulers
        job = make_job(cluster=0, execution=10.0)
        a.transfer_job(job, b)
        g.sim.run()
        assert job.executed_cluster == 1
        assert job.transfers == 1
        assert a.jobs_sent_remote == 1
        assert b.jobs_received_remote == 1


class TestPrimitives:
    def test_pick_peers_distinct_and_bounded(self):
        g = MiniGrid(n_clusters=4, resources_per_cluster=1)
        s = g.schedulers[0]
        peers = s.pick_peers(2)
        assert len(peers) == 2
        assert len(set(id(p) for p in peers)) == 2
        assert s not in peers
        assert s.pick_peers(99) == s.pick_peers(99) or len(s.pick_peers(99)) == 3

    def test_pick_peers_zero_or_no_peers(self):
        g = MiniGrid(n_clusters=1, resources_per_cluster=1)
        assert g.schedulers[0].pick_peers(2) == []
        g2 = MiniGrid(n_clusters=3, resources_per_cluster=1)
        assert g2.schedulers[0].pick_peers(0) == []

    def test_local_average_load(self):
        g = MiniGrid(n_clusters=1, resources_per_cluster=2)
        s = g.schedulers[0]
        s.table.record(0, 4.0, 0.0)
        assert s.local_average_load() == 2.0

    def test_park_job_timeout_forces_local_dispatch(self):
        g = MiniGrid(n_clusters=1, resources_per_cluster=1)
        s = g.schedulers[0]
        s.wait_timeout = 50.0
        job = make_job(execution=10.0)
        s.park_job(job)
        assert s.parked_count == 1
        g.sim.run()
        assert job.state == JobState.COMPLETED
        assert job.completion_time >= 50.0

    def test_pop_parked_skips_already_placed(self):
        g = MiniGrid(n_clusters=1, resources_per_cluster=1)
        s = g.schedulers[0]
        s.wait_timeout = 1000.0
        j1, j2 = make_job(), make_job()
        s.park_job(j1)
        s.park_job(j2)
        # j1 gets placed by some other path
        j1.mark_placed(0)
        assert s.peek_parked() is j2
        assert s.pop_parked() is j2
        assert s.pop_parked() is None

    def test_status_forward_refreshes_table_and_hook(self):
        g = MiniGrid(n_clusters=1, resources_per_cluster=2)
        s = g.schedulers[0]
        seen = []
        s.after_status_update = lambda p: seen.append(p)
        s.deliver(
            Message(
                MessageKind.STATUS_FORWARD,
                payload={"resource_id": 1, "cluster_id": 0, "load": 7},
            )
        )
        g.sim.run()
        assert s.table.load_of(1) == 7
        assert seen and seen[0]["load"] == 7

    def test_foreign_status_update_ignored_but_hooked(self):
        g = MiniGrid(n_clusters=2, resources_per_cluster=1)
        s = g.schedulers[0]
        seen = []
        s.after_status_update = lambda p: seen.append(p)
        s.deliver(
            Message(
                MessageKind.STATUS_FORWARD,
                payload={"resource_id": 1, "cluster_id": 1, "load": 9},
            )
        )
        g.sim.run()
        # resource 1 belongs to cluster 1; table untouched, hook fired.
        assert len(seen) == 1

    def test_unimplemented_protocol_message_raises(self):
        g = MiniGrid(n_clusters=1, resources_per_cluster=1)
        g.schedulers[0].deliver(Message(MessageKind.AUCTION_BID))
        with pytest.raises(ValueError):
            g.sim.run()


class TestCentralLayout:
    def test_central_manages_all_resources(self):
        g = MiniGrid(n_clusters=3, resources_per_cluster=2, central=True)
        assert len(g.schedulers) == 1
        s = g.schedulers[0]
        assert len(s.resources) == 6
        assert len(s.table) == 6

    def test_central_decision_cost_covers_pool(self):
        g = MiniGrid(n_clusters=3, resources_per_cluster=2, central=True)
        s = g.schedulers[0]
        assert s.decision_cost() == pytest.approx(
            g.costs.decision_base + 6 * g.costs.scan_per_entry
        )
