"""Tests for tracing and timeline tooling."""

import pytest

from repro.sim import Simulator
from repro.sim.trace import TraceRecorder, busy_gantt, job_timeline

from helpers import make_job


class TestTraceRecorder:
    def test_records_executed_events(self):
        sim = Simulator()
        rec = TraceRecorder(sim)

        def tick(x):
            pass

        sim.schedule(1.0, tick, 42)
        sim.schedule(2.0, tick, 43)
        sim.run()
        assert len(rec.records) == 2
        assert rec.records[0].time == 1.0
        assert "tick" in rec.records[0].callback
        assert "42" in rec.records[0].summary

    def test_capacity_ring(self):
        sim = Simulator()
        rec = TraceRecorder(sim, capacity=3)
        for i in range(6):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert len(rec.records) == 3
        assert rec.dropped == 3
        assert rec.records[0].time == 3.0  # oldest retained

    def test_predicate_filters(self):
        sim = Simulator()
        rec = TraceRecorder(sim, predicate=lambda t, fn, args: t >= 5.0)
        for i in range(10):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert all(r.time >= 5.0 for r in rec.records)
        assert len(rec.records) == 5

    def test_matching(self):
        sim = Simulator()
        rec = TraceRecorder(sim)

        def alpha():
            pass

        def beta():
            pass

        sim.schedule(1.0, alpha)
        sim.schedule(2.0, beta)
        sim.run()
        assert len(rec.matching("alpha")) == 1

    def test_detach(self):
        sim = Simulator()
        rec = TraceRecorder(sim)
        rec.detach(sim)
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert rec.records == []

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            TraceRecorder(Simulator(), capacity=0)

    def test_attach_chains_existing_callback(self):
        sim = Simulator()
        seen = []
        sim.trace = lambda t, fn, args: seen.append(t)
        rec = TraceRecorder(sim)
        sim.schedule(1.0, lambda: None)
        sim.run()
        # both the prior callback and the recorder observe the event
        assert seen == [1.0]
        assert len(rec.records) == 1

    def test_detach_restores_previous_callback(self):
        sim = Simulator()
        seen = []
        previous = lambda t, fn, args: seen.append(t)
        sim.trace = previous
        rec = TraceRecorder(sim)
        rec.detach(sim)
        assert sim.trace is previous
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert seen == [1.0]
        assert rec.records == []

    def test_stacked_recorders_detach_lifo(self):
        sim = Simulator()
        first = TraceRecorder(sim)
        second = TraceRecorder(sim)
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert len(first.records) == 1 and len(second.records) == 1
        second.detach(sim)
        assert sim.trace == first._on_event
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert len(first.records) == 2
        assert len(second.records) == 1
        first.detach(sim)
        assert sim.trace is None


class TestJobTimeline:
    def test_full_lifecycle_narrative(self):
        j = make_job(arrival=100.0, execution=50.0, benefit=3.0, cluster=1)
        j.mark_placed(2)
        j.mark_running(120.0)
        j.mark_completed(170.0)
        lines = job_timeline(j)
        text = "\n".join(lines)
        assert "arrival" in text
        assert "cluster 2" in text
        assert "transferred" in text
        assert "waited 20.0" in text
        assert "SUCCESS" in text

    def test_missed_bound_flagged(self):
        j = make_job(arrival=0.0, execution=10.0, benefit=2.0)
        j.mark_placed(0)
        j.mark_running(100.0)
        j.mark_completed(110.0)  # response 110 > bound 20
        assert "MISSED BOUND" in "\n".join(job_timeline(j))

    def test_incomplete_job_shows_state(self):
        j = make_job()
        assert "submitted" in "\n".join(job_timeline(j))


class TestBusyGantt:
    def make_completed(self, cluster, start, end, arrival=0.0):
        j = make_job(arrival=arrival, execution=end - start, benefit=5.0, cluster=cluster)
        j.mark_placed(cluster)
        j.mark_running(start)
        j.mark_completed(end)
        return j

    def test_renders_busy_periods(self):
        jobs = [
            self.make_completed(0, 10.0, 50.0),
            self.make_completed(1, 20.0, 80.0),
        ]
        out = busy_gantt(jobs, 0.0, 100.0, width=40)
        assert "cluster   0" in out
        assert "cluster   1" in out
        assert "#" in out

    def test_overlap_marked(self):
        jobs = [
            self.make_completed(0, 10.0, 50.0),
            self.make_completed(0, 20.0, 60.0),
        ]
        out = busy_gantt(jobs, 0.0, 100.0, width=40)
        assert "=" in out

    def test_empty_window(self):
        out = busy_gantt([], 0.0, 10.0)
        assert "no service" in out

    def test_bad_window(self):
        with pytest.raises(ValueError):
            busy_gantt([], 10.0, 10.0)
