"""StudySpec unit tests: validation, wire round-trip, science digest.

The spec is the single description of a study shared by the Python API,
the CLI, and the fabric wire protocol — so its invariants (frozen,
validated, exact JSON inverses, digest that ignores execution
mechanics) are what every other layer leans on.
"""

import dataclasses

import pytest

from repro.experiments.cliargs import spec_from_args, study_parent
from repro.experiments.spec import (
    EXECUTION_FIELDS,
    KINDS,
    SPEC_VERSION,
    StudySpec,
    spec_digest,
    spec_from_jsonable,
    spec_to_jsonable,
)
from repro.faults import FaultPlan


class TestValidation:
    def test_defaults_are_a_valid_figure_spec(self):
        spec = StudySpec()
        assert spec.kind == "figure"
        assert spec.figure_number == 2
        assert spec.rms_list is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown study kind"):
            StudySpec(kind="sweep")

    def test_figure_range_enforced(self):
        with pytest.raises(ValueError, match="2-7"):
            StudySpec(kind="figure", figure=9)
        for n in range(2, 8):
            assert StudySpec(kind="figure", figure=n).figure_number == n

    def test_figure_number_meaningless_elsewhere(self):
        with pytest.raises(ValueError, match="meaningless"):
            StudySpec(kind="compare", figure=3)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            StudySpec().kind = "compare"

    def test_rms_normalized_to_tuple(self):
        spec = StudySpec(kind="compare", rms=["LOWEST", "CENTRAL"])
        assert spec.rms == ("LOWEST", "CENTRAL")
        assert spec.rms_list == ["LOWEST", "CENTRAL"]

    def test_faults_must_be_a_plan(self):
        with pytest.raises(TypeError):
            StudySpec(kind="faults", faults={"resource_mttf": 100})

    def test_replace_revalidates(self):
        spec = StudySpec(kind="figure", figure=4)
        assert spec.replace(figure=5).figure == 5
        with pytest.raises(ValueError):
            spec.replace(figure=11)


class TestWireFormat:
    def roundtrip(self, spec):
        payload = spec_to_jsonable(spec)
        return spec_from_jsonable(payload)

    def test_roundtrip_identity_plain(self):
        spec = StudySpec(kind="series", probe_intervals=(30.0, 60.0), jobs=4)
        assert self.roundtrip(spec) == spec

    def test_roundtrip_identity_with_fault_plan(self):
        plan = FaultPlan(resource_mttf=900.0, resource_mttr=90.0)
        spec = StudySpec(kind="faults", faults=plan, mttf=900.0)
        assert self.roundtrip(spec) == spec

    def test_payload_is_plain_json_types(self):
        import json

        spec = StudySpec(kind="trace", rms=("LOWEST",), trace_sample=0.5)
        payload = spec_to_jsonable(spec)
        assert payload["version"] == SPEC_VERSION
        assert payload["rms"] == ["LOWEST"]
        json.dumps(payload)  # must not raise

    def test_unknown_keys_rejected(self):
        payload = spec_to_jsonable(StudySpec())
        payload["jobz"] = 4
        with pytest.raises(ValueError, match="jobz"):
            spec_from_jsonable(payload)

    def test_version_mismatch_rejected(self):
        payload = spec_to_jsonable(StudySpec())
        payload["version"] = SPEC_VERSION + 1
        with pytest.raises(ValueError, match="version"):
            spec_from_jsonable(payload)

    def test_every_kind_roundtrips(self):
        for kind in KINDS:
            spec = StudySpec(kind=kind)
            assert self.roundtrip(spec) == spec


class TestDigest:
    def test_execution_fields_do_not_change_the_digest(self):
        base = StudySpec(kind="compare", seed=11)
        variants = [
            base.replace(jobs=8),
            base.replace(cache_dir="/tmp/elsewhere"),
            base.replace(no_cache=True),
            base.replace(resume=True),
            base.replace(kernel_backend="array"),
            base.replace(precision=6),
        ]
        for variant in variants:
            assert spec_digest(variant) == spec_digest(base)

    def test_science_fields_change_the_digest(self):
        base = StudySpec(kind="compare", seed=11)
        assert spec_digest(base.replace(seed=12)) != spec_digest(base)
        assert spec_digest(base.replace(rms=("LOWEST",))) != spec_digest(base)

    def test_execution_fields_exist_on_the_dataclass(self):
        names = {f.name for f in dataclasses.fields(StudySpec)}
        assert EXECUTION_FIELDS <= names


class TestSpecFromArgs:
    def test_namespace_round_trip_minimal(self):
        # a namespace with only the study parent's attrs still specs out
        args = study_parent().parse_args(["--seed", "3", "--rms", "LOWEST, SI"])
        spec = spec_from_args("compare", args)
        assert spec.kind == "compare"
        assert spec.seed == 3
        assert spec.rms == ("LOWEST", "SI")

    def test_overrides_win(self):
        args = study_parent().parse_args([])
        plan = FaultPlan(resource_mttf=500.0, resource_mttr=50.0)
        spec = spec_from_args("faults", args, faults=plan)
        assert spec.faults is plan
