"""Tests for the cross-case conclusion summary."""

import pytest

from repro.experiments.summary import summarize_case, study_report

from test_experiments_reporting import fake_series


def series_pair():
    # scalable: G tracks F (both linear-ish)
    good = fake_series("GOOD", Gs=(100.0, 200.0, 300.0))
    # unscalable: overhead explodes
    bad = fake_series("BAD", Gs=(100.0, 400.0, 1200.0))
    # mark BAD's top points infeasible
    for p in bad.result.points[1:]:
        object.__setattr__(p, "feasible", False)
    return {"GOOD": good, "BAD": bad}


class TestSummarizeCase:
    def test_ranking_prefers_feasible_then_flat(self):
        cs = summarize_case("Case X", series_pair())
        assert cs.ranking[0] == "GOOD"
        assert cs.ranking[-1] == "BAD"

    def test_rows_content(self):
        cs = summarize_case("Case X", series_pair())
        slope_good, thru_good, eq2_good = cs.rows["GOOD"]
        assert thru_good == 3
        assert slope_good == pytest.approx(1.0)  # g: 1,2,3
        slope_bad, thru_bad, _ = cs.rows["BAD"]
        assert thru_bad == 1
        assert slope_bad > slope_good

    def test_variable_feasible_when_any_design_survives(self):
        cs = summarize_case("Case X", series_pair())
        assert cs.variable_feasible

    def test_variable_infeasible_when_none_survive(self):
        series = series_pair()
        for s in series.values():
            for p in s.result.points[1:]:
                object.__setattr__(p, "feasible", False)
        cs = summarize_case("Case X", series)
        assert not cs.variable_feasible

    def test_empty_case(self):
        cs = summarize_case("empty", {})
        assert cs.ranking == []
        assert not cs.variable_feasible


class TestStudyReport:
    def test_report_renders_all_blocks(self):
        cs = summarize_case("Case X", series_pair())
        out = study_report([cs, cs])
        assert out.count("Case X") == 2
        assert "ranking (best first): GOOD > BAD" in out
        assert "feasible scaling variable" in out

    def test_infeasible_variable_flagged(self):
        series = series_pair()
        for s in series.values():
            for p in s.result.points:
                object.__setattr__(p, "feasible", False)
        out = study_report([summarize_case("Case Y", series)])
        assert "NO design scales" in out
