"""Property-based tests for the content-addressed config hash.

The run cache keys on ``config_key(config)``; these properties are what
make that key safe to persist:

* invariance — field/dict ordering and construction path never change
  the key;
* sensitivity — every semantic field (including nested cost-model and
  Table-1 constants) changes the key;
* stability — the key does not depend on ``PYTHONHASHSEED``, the
  process, or the interpreter session.
"""

import dataclasses
import json
import os
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import SimulationConfig
from repro.experiments.config import CommonParameters
from repro.experiments.parallel import (
    CONDITIONAL_PROVENANCE_FIELDS,
    PROVENANCE_FIELDS,
    canonical_config,
    config_key,
)
from repro.grid.costs import CostModel


def base_config(**kw):
    kw.setdefault("rms", "LOWEST")
    kw.setdefault("n_schedulers", 3)
    kw.setdefault("n_resources", 9)
    kw.setdefault("workload_rate", 0.004)
    return SimulationConfig(**kw)


#: the enabler settings grid `with_enablers` accepts
_ENABLERS = {
    "update_interval": 12.5,
    "neighborhood_size": 3,
    "link_delay_scale": 1.6,
    "volunteer_interval": 80.0,
}


class TestInvariance:
    @settings(max_examples=50, deadline=None)
    @given(order=st.permutations(sorted(_ENABLERS)))
    def test_settings_dict_order_irrelevant(self, order):
        """`with_enablers` applied in any dict order yields one key."""
        shuffled = {name: _ENABLERS[name] for name in order}
        reference = base_config().with_enablers(dict(sorted(_ENABLERS.items())))
        permuted = base_config().with_enablers(shuffled)
        assert config_key(permuted) == config_key(reference)

    def test_construction_path_irrelevant(self):
        direct = base_config(update_interval=12.5, seed=3)
        via_replace = replace(base_config(seed=99), update_interval=12.5, seed=3)
        assert config_key(direct) == config_key(via_replace)

    def test_int_vs_float_literal_irrelevant(self):
        """2 and 2.0 describe the same run; they must share a key."""
        assert config_key(base_config(service_rate=2)) == config_key(
            base_config(service_rate=2.0)
        )

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n_schedulers=st.integers(1, 6),
        rate=st.floats(1e-4, 1e-2, allow_nan=False),
    )
    def test_equal_configs_equal_keys(self, seed, n_schedulers, rate):
        a = base_config(seed=seed, n_schedulers=n_schedulers, workload_rate=rate)
        b = base_config(seed=seed, n_schedulers=n_schedulers, workload_rate=rate)
        assert config_key(a) == config_key(b)


#: (field, changed value) pairs covering every top-level semantic field
_FIELD_CHANGES = [
    ("rms", "CENTRAL"),
    ("n_schedulers", 4),
    ("n_resources", 12),
    ("workload_rate", 0.005),
    ("service_rate", 2.0),
    ("n_estimators", 5),
    ("l_p", 3),
    ("update_interval", 13.0),
    ("neighborhood_size", 5),
    ("link_delay_scale", 1.6),
    ("volunteer_interval", 240.0),
    ("horizon", 4000.0),
    ("drain", 5000.0),
    ("seed", 8),
    ("loss_probability", 0.1),
    ("estimator_batch_window", 15.0),
    ("dependency_prob", 0.2),
    ("max_parents", 3),
    ("dependency_window", 12),
]


class TestSensitivity:
    @pytest.mark.parametrize("field,value", _FIELD_CHANGES)
    def test_any_field_change_changes_key(self, field, value):
        before = base_config()
        after = replace(before, **{field: value})
        assert config_key(after) != config_key(before)

    def test_nested_cost_change_changes_key(self):
        before = base_config()
        after = replace(before, costs=CostModel(update_proc=5.0))
        assert config_key(after) != config_key(before)

    def test_nested_common_change_changes_key(self):
        before = base_config()
        after = replace(before, common=CommonParameters(t_cpu=650.0))
        assert config_key(after) != config_key(before)

    @settings(max_examples=30, deadline=None)
    @given(pair=st.tuples(st.integers(0, 10_000), st.integers(0, 10_000)))
    def test_distinct_seeds_distinct_keys(self, pair):
        a, b = pair
        keys = config_key(base_config(seed=a)), config_key(base_config(seed=b))
        assert (keys[0] == keys[1]) == (a == b)


class TestCrossProcessStability:
    def test_key_stable_under_hash_randomization(self):
        """The key must be identical in fresh interpreters started with
        different ``PYTHONHASHSEED`` values (no reliance on built-in
        string hashing)."""
        import repro

        src_root = str(Path(repro.__file__).parents[1])
        script = (
            "from repro.experiments import SimulationConfig\n"
            "from repro.experiments.parallel import config_key\n"
            "c = SimulationConfig(rms='LOWEST', n_schedulers=3, n_resources=9,\n"
            "                     workload_rate=0.004, update_interval=12.5)\n"
            "print(config_key(c))\n"
        )
        keys = []
        for hashseed in ("0", "4242"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed, PYTHONPATH=src_root)
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                timeout=60,
            )
            assert proc.returncode == 0, proc.stderr
            keys.append(proc.stdout.strip())
        in_process = config_key(base_config(update_interval=12.5))
        assert keys[0] == keys[1] == in_process

    def test_canonical_form_is_json_round_trippable(self):
        canon = canonical_config(base_config())
        assert canon == json.loads(json.dumps(canon))

    def test_canonical_form_covers_every_field(self):
        """No config field may *silently* escape the hash.

        Every field is either hashed, explicitly declared provenance
        (recorded alongside results but excluded from the key — e.g.
        ``kernel_backend``, whose backends are bit-identical by
        contract, so one cached result serves all of them), or declared
        *conditionally* provenance (``monitor``: dropped while passive,
        hashed once it charges).
        """
        canon = canonical_config(base_config())
        declared = PROVENANCE_FIELDS | CONDITIONAL_PROVENANCE_FIELDS
        for f in dataclasses.fields(SimulationConfig):
            assert f.name in canon or f.name in declared

    def test_conditional_provenance_hashes_when_active(self):
        """An active monitor plan is semantics, not provenance."""
        from repro.telemetry.timeseries import MonitorPlan

        active = replace(
            base_config(),
            monitor=MonitorPlan(probe_interval=10.0, charge_rate=0.5),
        )
        assert "monitor" in canonical_config(active)
        assert config_key(active) != config_key(base_config())

    def test_provenance_fields_excluded_from_hash(self):
        """Declared provenance fields never perturb the key."""
        canon = canonical_config(base_config())
        for name in PROVENANCE_FIELDS:
            assert name not in canon
        ref = config_key(base_config())
        assert config_key(replace(base_config(), kernel_backend="fast")) == ref
        assert config_key(replace(base_config(), kernel_backend="reference")) == ref
