"""Integration tests for the time-resolved observatory.

The load-bearing contract is **byte-identity**: a passive monitor plan
(streams on, probes at zero charge rate) must leave every F/G/H result,
attribution cell, and cache key bit-for-bit identical to an unmonitored
run — across worker counts and both kernel backends.  On top of that:
the stream must *agree* with the ledger (series F/G/H sums reproduce
the end-of-run totals), steady-state detection must land within the
acceptance tolerance, charged probes must show monotone ``g.monitor``
growth with probe frequency while F stays conserved, and the study
driver / manifest / watch / CLI plumbing must round-trip it all.
"""

import json
import math
from dataclasses import replace

import pytest

from repro.experiments import SimulationConfig, run_simulation
from repro.experiments.parallel import ExperimentEngine, metrics_json_bytes
from repro.experiments.parallel.cache import RunCache, metrics_to_jsonable
from repro.experiments.parallel.hashing import config_key
from repro.experiments.seriesstudy import (
    SeriesAwareCache,
    run_series_study,
    series_report,
    sweep_report,
)
from repro.telemetry.timeseries import MonitorPlan, steady_state


def small_config(rms="LOWEST", **kw):
    """A small but non-trivial system (~10 ms per run)."""
    kw.setdefault("n_schedulers", 3)
    kw.setdefault("n_resources", 9)
    kw.setdefault("workload_rate", 0.004)
    kw.setdefault("horizon", 2000.0)
    kw.setdefault("drain", 3000.0)
    kw.setdefault("update_interval", 20.0)
    kw.setdefault("seed", 11)
    return SimulationConfig(rms=rms, **kw)


PASSIVE = MonitorPlan(series=True, probe_interval=40.0)
ACTIVE = MonitorPlan(series=True, probe_interval=40.0, charge_rate=0.05)


def stripped_bytes(metrics) -> bytes:
    """Canonical metrics bytes with the series payload removed."""
    payload = metrics_to_jsonable(metrics)
    payload.pop("series", None)
    return json.dumps(payload, sort_keys=True).encode()


class TestByteIdentity:
    """Satellite: passive monitoring changes nothing, anywhere."""

    @pytest.mark.parametrize("rms", ["LOWEST", "CENTRAL", "S-I"])
    def test_passive_plan_leaves_results_bit_identical(self, rms):
        plain = run_simulation(small_config(rms))
        monitored = run_simulation(
            replace(small_config(rms), monitor=PASSIVE)
        )
        assert monitored.series is not None
        assert stripped_bytes(monitored) == stripped_bytes(plain)
        assert monitored.record.F == plain.record.F
        assert monitored.attribution == plain.attribution

    @pytest.mark.parametrize("backend", ["reference", "fast"])
    def test_passive_plan_identity_on_both_kernels(self, backend):
        base = replace(small_config(), kernel_backend=backend)
        plain = run_simulation(base)
        monitored = run_simulation(replace(base, monitor=PASSIVE))
        assert stripped_bytes(monitored) == stripped_bytes(plain)

    def test_passive_plan_shares_the_cache_key(self):
        base = small_config()
        assert config_key(replace(base, monitor=PASSIVE)) == config_key(base)
        assert config_key(
            replace(base, monitor=MonitorPlan(series=True))
        ) == config_key(base)

    def test_active_plan_changes_the_cache_key(self):
        base = small_config()
        assert config_key(replace(base, monitor=ACTIVE)) != config_key(base)

    def test_results_identical_across_worker_counts(self):
        configs = [
            replace(small_config(rms), monitor=PASSIVE)
            for rms in ("LOWEST", "CENTRAL")
        ]
        with ExperimentEngine(jobs=1) as serial, ExperimentEngine(jobs=4) as pool:
            a = serial.run_many(configs)
            b = pool.run_many(configs)
        for x, y in zip(a, b):
            assert metrics_json_bytes(x) == metrics_json_bytes(y)

    def test_unmonitored_metrics_carry_no_series_key(self):
        # the jsonable shape of unmonitored runs is unchanged from seed
        payload = metrics_to_jsonable(run_simulation(small_config()))
        assert "series" not in payload


class TestStreamAgreesWithLedger:
    def test_series_sums_reproduce_fgh_totals(self):
        m = run_simulation(replace(small_config(), monitor=PASSIVE))
        sums = m.series["sums"]
        for key, total in (("F", m.record.F), ("G", m.record.G), ("H", m.record.H)):
            assert math.fsum(sums.get(key, ())) == pytest.approx(
                total, rel=1e-9, abs=1e-9
            )

    def test_component_detail_sums_to_g(self):
        m = run_simulation(replace(small_config(), monitor=PASSIVE))
        comp_total = math.fsum(
            math.fsum(arr)
            for key, arr in m.series["sums"].items()
            if key.startswith("g:")
        )
        assert comp_total == pytest.approx(m.record.G, rel=1e-9)

    def test_probe_gauges_recorded(self):
        m = run_simulation(replace(small_config(), monitor=PASSIVE))
        samples = m.series["samples"]
        assert "probe:sched_queue" in samples
        assert "probe:running" in samples
        assert sum(samples["probe:running"]["count"]) > 0

    def test_steady_state_close_to_final(self):
        m = run_simulation(replace(small_config(), monitor=PASSIVE))
        s = steady_state(m.series)
        assert s["rel_error"] < 0.02  # the acceptance tolerance

    def test_charged_probes_show_up_in_g_monitor(self):
        m = run_simulation(replace(small_config(), monitor=ACTIVE))
        monitor_g = math.fsum(
            v for k, v in m.attribution.items() if k.startswith("g.monitor")
        )
        assert monitor_g > 0.0
        # per-sweep charge = rate x probed entities; sweeps at fixed period
        plain = run_simulation(small_config())
        assert m.record.G == pytest.approx(plain.record.G + monitor_g)
        assert m.record.F == plain.record.F  # charges never touch behaviour


class TestSweepMonotonicity:
    def test_g_monitor_monotone_and_f_conserved(self):
        base = small_config()
        runs = {
            interval: run_simulation(
                replace(
                    base,
                    monitor=MonitorPlan(
                        series=True, probe_interval=interval, charge_rate=0.05
                    ),
                )
            )
            for interval in (25.0, 50.0, 100.0)
        }
        monitor_g = {
            i: math.fsum(
                v for k, v in m.attribution.items() if k.startswith("g.monitor")
            )
            for i, m in runs.items()
        }
        assert monitor_g[25.0] > monitor_g[50.0] > monitor_g[100.0] > 0.0
        f_values = {m.record.F for m in runs.values()}
        assert len(f_values) == 1  # bit-for-bit conserved


class TestSeriesAwareCache:
    def test_series_less_hit_reads_as_miss_and_upgrades(self, tmp_path):
        base = small_config()
        with ExperimentEngine(jobs=1, cache=RunCache(tmp_path)) as engine:
            engine.run(base)  # cache an unmonitored (series-less) entry

        cache = SeriesAwareCache(tmp_path)
        monitored = replace(base, monitor=PASSIVE)
        with ExperimentEngine(jobs=1, cache=cache) as engine:
            m = engine.run(monitored)
        assert m.series is not None
        assert cache.misses >= 1

        # the rewritten entry now carries the stream: second read hits
        cache2 = SeriesAwareCache(tmp_path)
        with ExperimentEngine(jobs=1, cache=cache2) as engine:
            again = engine.run(monitored)
        assert again.series is not None
        assert cache2.hits >= 1
        assert metrics_json_bytes(again) == metrics_json_bytes(m)

    def test_plain_configs_unaffected(self, tmp_path):
        base = small_config()
        cache = SeriesAwareCache(tmp_path)
        with ExperimentEngine(jobs=1, cache=cache) as engine:
            engine.run(base)
        cache2 = SeriesAwareCache(tmp_path)
        with ExperimentEngine(jobs=1, cache=cache2) as engine:
            engine.run(base)
        assert cache2.hits == 1


class TestStudyDriver:
    @pytest.fixture(scope="class")
    def study(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("series-study")
        manifest = root / "manifests" / "series.json"
        plan = MonitorPlan(series=True, probe_interval=60.0, charge_rate=0.01)
        with ExperimentEngine(jobs=1, cache=SeriesAwareCache(root)) as engine:
            result = run_series_study(
                profile="ci",
                rms=["LOWEST", "CENTRAL"],
                plan=plan,
                sweep_intervals=[120.0],
                engine=engine,
                manifest_path=manifest,
            )
        return result

    def test_points_carry_series_and_steady(self, study):
        for name, points in study.series.items():
            assert len(points) >= 2
            for p in points:
                assert p.series is not None
                assert p.steady["rel_error"] < 0.02

    def test_sweep_includes_base_interval(self, study):
        assert set(study.sweep) == {60.0, 120.0}

    def test_manifest_round_trips_through_attrib(self, study):
        from repro.experiments.attrib import check_conservation, points_from_manifest

        points = points_from_manifest(study.manifest_path)
        assert len(points) == sum(len(v) for v in study.series.values())
        for p in points:
            assert check_conservation(p) == []

    def test_manifest_points_carry_series_payloads(self, study):
        payload = json.loads(study.manifest_path.read_text())
        entry = next(iter(payload["completed"].values()))
        point = entry["result"]["points"][0]
        assert "series" in point and "steady" in point
        assert entry["monitor"]["probe_interval"] == 60.0

    def test_reports_render(self, study):
        text = series_report(study)
        assert "steady-state" in text
        assert "within 2%" in text or "EXCEEDS" in text
        sweep = sweep_report(study)
        assert "F conserved across sweep: yes" in sweep
        assert "G:monitor monotone in probe frequency: yes" in sweep

    def test_watch_renders_the_manifest(self, study):
        from repro.experiments.watch import render_snapshot, resolve_manifest, watch

        path = resolve_manifest(study.manifest_path.parent)
        assert path == study.manifest_path
        snap = render_snapshot(path)
        assert "completed point(s)" in snap
        assert "steady E" in snap
        import io

        buf = io.StringIO()
        assert watch(path, once=True, out=buf) == 1
        assert "completed point(s)" in buf.getvalue()

    def test_watch_missing_manifest_waits(self, tmp_path):
        from repro.experiments.watch import render_snapshot

        snap = render_snapshot(tmp_path / "nope.json")
        assert "waiting" in snap


class TestCli:
    def test_series_and_watch_subcommands(self, tmp_path, capsys):
        from repro.experiments.cli import main

        rc = main(
            [
                "series",
                "--profile", "ci",
                "--rms", "CENTRAL",
                "--jobs", "1",
                "--cache-dir", str(tmp_path),
                "--probe-interval", "60",
                "--csv", str(tmp_path / "s.csv"),
                "--prom", str(tmp_path / "s.prom"),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "steady-state" in out
        assert (tmp_path / "manifests" / "series.json").is_file()
        csv_text = (tmp_path / "s.csv").read_text()
        assert csv_text.startswith("rms,scale,t,width,F,G,H")
        assert "repro_steady_efficiency" in (tmp_path / "s.prom").read_text()

        rc = main(["watch", "--once", "--cache-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "completed point(s)" in out

    def test_series_rejects_bad_interval_list(self, tmp_path, capsys):
        from repro.experiments.cli import main

        rc = main(
            [
                "series",
                "--cache-dir", str(tmp_path),
                "--probe-interval", "60,abc",
            ]
        )
        assert rc == 2
        assert "--probe-interval" in capsys.readouterr().err
