"""Fault-injection subsystem tests: the FaultPlan API, the failure
semantics of the grid layer, detection/re-dispatch end to end, and the
determinism guarantees the run cache depends on."""

import json
import warnings

import pytest

from repro.experiments import SimulationConfig, run_simulation
from repro.experiments.parallel.cache import metrics_json_bytes
from repro.experiments.parallel.hashing import config_key
from repro.faults import (
    Blackout,
    CrashEvent,
    DegradationWindow,
    FaultPlan,
    plan_from_jsonable,
    plan_to_jsonable,
)

from helpers import MiniGrid, make_job


def tiny_config(rms="LOWEST", **overrides):
    kwargs = dict(
        rms=rms,
        n_schedulers=2,
        n_resources=6,
        workload_rate=0.004,
        horizon=1500.0,
        drain=4000.0,
        seed=11,
    )
    kwargs.update(overrides)
    return SimulationConfig(**kwargs)


CHURN = FaultPlan(resource_mttf=500.0, resource_mttr=60.0)


# ---------------------------------------------------------------------------
# The FaultPlan public API
# ---------------------------------------------------------------------------

class TestFaultPlan:
    def test_inert_by_default(self):
        plan = FaultPlan()
        assert plan.is_inert
        assert not plan.has_churn
        assert not plan.has_resource_faults
        assert not plan.any_link_loss

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(link_loss=1.0)
        with pytest.raises(ValueError):
            FaultPlan(resource_mttf=-1.0)
        with pytest.raises(ValueError):
            FaultPlan(resource_mttf=100.0, churn_fraction=0.0)
        with pytest.raises(ValueError):
            FaultPlan(redispatch_backoff=0.0)
        with pytest.raises(ValueError):
            CrashEvent(resource=0, at=-1.0)
        with pytest.raises(ValueError):
            Blackout(scheduler=0, at=0.0, duration=-5.0)
        with pytest.raises(ValueError):
            DegradationWindow(at=0.0, duration=10.0, extra_loss=1.5)

    def test_effective_mttr_defaults_to_tenth_of_mttf(self):
        assert FaultPlan(resource_mttf=1000.0).effective_mttr == 100.0
        assert FaultPlan(resource_mttf=1000.0, resource_mttr=5.0).effective_mttr == 5.0

    def test_heartbeat_derivation(self):
        plan = FaultPlan()
        assert plan.effective_heartbeat_timeout(40.0) == pytest.approx(180.0)
        assert plan.effective_heartbeat_interval(40.0) == 40.0
        plan = FaultPlan(heartbeat_timeout=77.0, heartbeat_interval=11.0)
        assert plan.effective_heartbeat_timeout(40.0) == 77.0
        assert plan.effective_heartbeat_interval(40.0) == 11.0

    def test_json_round_trip(self):
        plan = FaultPlan(
            link_loss=0.1,
            resource_mttf=800.0,
            churn_fraction=0.5,
            crashes=[CrashEvent(resource=2, at=100.0, duration=50.0)],
            blackouts=[Blackout(scheduler=1, at=200.0, duration=30.0)],
            degradations=[
                DegradationWindow(at=10.0, duration=40.0, extra_loss=0.2, delay_factor=3.0)
            ],
        )
        payload = plan_to_jsonable(plan)
        # must survive a JSON file round trip (the --fault-plan flag)
        rebuilt = plan_from_jsonable(json.loads(json.dumps(payload)))
        assert rebuilt == plan

    def test_unknown_keys_rejected(self):
        with pytest.raises((ValueError, TypeError)):
            plan_from_jsonable({"link_loss": 0.1, "mystery_knob": 3})

    def test_timelines_coerced_to_tuples(self):
        plan = FaultPlan(crashes=[CrashEvent(resource=0, at=1.0)])
        assert isinstance(plan.crashes, tuple)


# ---------------------------------------------------------------------------
# Deprecated loss_probability path
# ---------------------------------------------------------------------------

class TestLossProbabilityDeprecation:
    def test_warns_and_canonicalizes(self):
        with pytest.warns(DeprecationWarning):
            config = tiny_config(loss_probability=0.2)
        assert config.loss_probability == 0.0
        assert config.faults.link_loss == 0.2

    def test_equivalent_configs_equal_and_same_cache_key(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            old = tiny_config(loss_probability=0.25)
        new = tiny_config(faults=FaultPlan(link_loss=0.25))
        assert old == new
        assert config_key(old) == config_key(new)

    def test_equivalent_configs_identical_metrics(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            old = tiny_config(loss_probability=0.25)
        new = tiny_config(faults=FaultPlan(link_loss=0.25))
        assert metrics_json_bytes(run_simulation(old)) == metrics_json_bytes(
            run_simulation(new)
        )

    def test_both_spellings_conflict(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError):
                tiny_config(
                    loss_probability=0.2, faults=FaultPlan(link_loss=0.1)
                )


# ---------------------------------------------------------------------------
# Grid-layer failure semantics (unit level)
# ---------------------------------------------------------------------------

class TestResourceFailRepair:
    def test_fail_kills_running_job_and_goes_silent(self):
        grid = MiniGrid(n_clusters=1, resources_per_cluster=1)
        res = grid.resources[0]
        job = grid.submit(make_job(execution=100.0))
        grid.sim.run(until=10.0)
        assert job.state == "running"
        killed = res.fail()
        assert killed == 1
        assert job.state == "failed"
        assert res.failed and not res.online
        assert res.jobs_killed == 1
        # a crashed resource swallows later dispatches without charging
        late = make_job()
        late.mark_placed(0)
        before = grid.ledger.H
        res.accept_job(late)
        assert grid.ledger.H == before
        assert late.state == "failed"

    def test_fail_is_idempotent(self):
        grid = MiniGrid(n_clusters=1, resources_per_cluster=1)
        res = grid.resources[0]
        res.fail()
        assert res.fail() == 0

    def test_repair_restores_service(self):
        grid = MiniGrid(n_clusters=1, resources_per_cluster=1)
        res = grid.resources[0]
        res.fail()
        res.repair()
        assert not res.failed and res.online
        job = grid.submit(make_job(execution=5.0))
        grid.sim.run()
        assert job.state == "completed"

    def test_stale_epoch_dispatch_dropped(self):
        grid = MiniGrid(n_clusters=1, resources_per_cluster=1)
        res = grid.resources[0]
        job = make_job()
        job.mark_placed(0)
        stale = job.dispatch_epoch
        job.mark_failed()
        job.mark_requeued()
        job.mark_placed(0)  # epoch moves on
        res.accept_job(job, epoch=stale)
        assert res.stale_dispatches == 1
        assert not res._queue


class TestJobLifecycle:
    def test_failed_and_requeued_transitions(self):
        job = make_job()
        job.mark_placed(0)
        epoch = job.dispatch_epoch
        job.mark_failed()
        assert job.start_service is None
        job.mark_requeued()
        assert job.retries == 1
        job.mark_placed(0)
        assert job.dispatch_epoch == epoch + 1

    def test_cannot_fail_completed_job(self):
        job = make_job()
        job.mark_placed(0)
        job.mark_running(1.0)
        job.mark_completed(2.0)
        with pytest.raises(ValueError):
            job.mark_failed()


class TestStatusTableDeath:
    def test_dead_resources_age_out_of_views(self):
        from repro.grid import StatusTable

        table = StatusTable([0, 1])
        table.record(0, 0.2, time=1.0)
        table.record(1, 0.8, time=1.0)
        table.mark_dead(0)
        assert table.is_dead(0)
        assert table.alive_count == 1
        assert table.least_loaded()[0] == 1
        assert table.average_load() == pytest.approx(0.8)
        # a *newer* report revives the entry
        table.record(0, 0.1, time=2.0)
        assert not table.is_dead(0)
        assert table.least_loaded()[0] == 0

    def test_all_dead(self):
        from repro.grid import StatusTable

        table = StatusTable([0])
        table.record(0, 0.5, time=1.0)
        table.mark_dead(0)
        rid, load = table.least_loaded()
        assert rid is None
        assert table.alive_count == 0

    def test_untracked_mark_dead_raises(self):
        from repro.grid import StatusTable

        with pytest.raises(KeyError):
            StatusTable([0]).mark_dead(99)


class TestMessageServerPause:
    def test_pause_queues_resume_drains(self):
        grid = MiniGrid(n_clusters=1, resources_per_cluster=1)
        sched = grid.schedulers[0]
        sched.pause()
        assert sched.paused
        job = grid.submit(make_job(execution=5.0))
        grid.sim.run(until=50.0)
        # blacked out: the submission sits in the queue unprocessed
        assert job.state == "submitted"
        sched.resume()
        grid.sim.run()
        assert job.state == "completed"


class TestNetworkDegradation:
    def test_push_pop_scales_loss_and_delay(self):
        from repro.network import Network, Router
        from repro.sim import RngHub, Simulator
        from repro.topology import Topology

        sim = Simulator()
        topo = Topology(2)
        topo.add_link(0, 1, 0.5, 100.0)
        net = Network(
            sim, Router(topo), loss_probability=0.1,
            rng=RngHub(0).stream("loss"), delay_scale=2.0,
        )
        net.push_degradation(extra_loss=0.3, delay_factor=3.0)
        assert net.loss_probability == pytest.approx(0.4)
        assert net.delay_scale == pytest.approx(6.0)
        net.push_degradation(extra_loss=0.8)
        assert net.loss_probability == 0.99  # capped
        net.pop_degradation(extra_loss=0.8)
        net.pop_degradation(extra_loss=0.3, delay_factor=3.0)
        assert net.loss_probability == pytest.approx(0.1)
        assert net.delay_scale == pytest.approx(2.0)

    def test_pop_unknown_window_raises(self):
        from repro.network import Network, Router
        from repro.sim import Simulator
        from repro.topology import Topology

        sim = Simulator()
        topo = Topology(2)
        topo.add_link(0, 1, 0.5, 100.0)
        net = Network(sim, Router(topo))
        with pytest.raises(ValueError):
            net.pop_degradation(delay_factor=2.0)


# ---------------------------------------------------------------------------
# End-to-end fault injection
# ---------------------------------------------------------------------------

class TestEndToEnd:
    def test_inert_plan_changes_nothing(self):
        baseline = run_simulation(tiny_config())
        with_plan = run_simulation(tiny_config(faults=FaultPlan()))
        assert metrics_json_bytes(baseline) == metrics_json_bytes(with_plan)
        assert baseline.fault_stats is None
        assert all(
            not key.startswith("g.faults")
            for key in (baseline.attribution or {})
        )

    def test_churn_produces_faults_component(self):
        metrics = run_simulation(tiny_config(faults=CHURN))
        stats = metrics.fault_stats
        assert stats is not None
        assert stats["crashes"] > 0
        assert stats["recoveries"] > 0
        assert stats["dead_reported"] > 0
        assert stats["redispatches"] > 0
        faults_g = sum(
            v for k, v in metrics.attribution.items() if k.startswith("g.faults")
        )
        assert faults_g > 0.0

    @pytest.mark.parametrize("rms", ["CENTRAL", "RESERVE", "S-I", "Sy-I", "AUCTION", "R-I"])
    def test_every_design_survives_churn(self, rms):
        metrics = run_simulation(tiny_config(rms=rms, faults=CHURN))
        assert metrics.jobs_submitted > 0
        stats = metrics.fault_stats
        assert stats["crashes"] > 0
        # jobs lost to crashes near the deadline may strand, but the
        # vast majority must be recovered and completed
        assert metrics.jobs_completed >= 0.9 * metrics.jobs_submitted

    def test_churn_is_deterministic(self):
        a = run_simulation(tiny_config(faults=CHURN))
        b = run_simulation(tiny_config(faults=CHURN))
        assert metrics_json_bytes(a) == metrics_json_bytes(b)
        assert a.fault_stats == b.fault_stats

    def test_explicit_crash_timeline(self):
        plan = FaultPlan(crashes=[CrashEvent(resource=0, at=100.0, duration=200.0)])
        metrics = run_simulation(tiny_config(faults=plan))
        assert metrics.fault_stats["crashes"] == 1
        assert metrics.fault_stats["recoveries"] == 1

    def test_permanent_crash(self):
        plan = FaultPlan(crashes=[CrashEvent(resource=0, at=100.0)])
        metrics = run_simulation(tiny_config(faults=plan))
        assert metrics.fault_stats["crashes"] == 1
        assert metrics.fault_stats["recoveries"] == 0

    def test_blackout_window(self):
        plan = FaultPlan(blackouts=[Blackout(scheduler=0, at=100.0, duration=300.0)])
        metrics = run_simulation(tiny_config(faults=plan))
        assert metrics.fault_stats["blackouts"] == 1
        # nothing is lost across a blackout: messages queue and drain
        assert metrics.jobs_completed == metrics.jobs_submitted

    def test_degradation_window(self):
        plan = FaultPlan(
            degradations=[
                DegradationWindow(at=100.0, duration=500.0, extra_loss=0.3, delay_factor=2.0)
            ]
        )
        metrics = run_simulation(tiny_config(faults=plan))
        assert metrics.fault_stats["degradations"] == 1
        assert metrics.jobs_completed == metrics.jobs_submitted

    def test_plan_changes_cache_key(self):
        assert config_key(tiny_config()) != config_key(tiny_config(faults=CHURN))

    def test_fault_stats_survive_cache_round_trip(self):
        from repro.experiments.parallel.cache import (
            metrics_from_jsonable,
            metrics_to_jsonable,
        )

        metrics = run_simulation(tiny_config(faults=CHURN))
        rebuilt = metrics_from_jsonable(
            json.loads(json.dumps(metrics_to_jsonable(metrics)))
        )
        assert rebuilt.fault_stats == metrics.fault_stats


# ---------------------------------------------------------------------------
# Flight recorder integration
# ---------------------------------------------------------------------------

class TestFlightRecorderFaults:
    def test_fault_events_land_in_the_ring(self, tmp_path):
        from repro.telemetry import flightrec

        rec = flightrec.enable(tmp_path)
        try:
            run_simulation(
                tiny_config(
                    faults=FaultPlan(
                        crashes=[CrashEvent(resource=0, at=100.0, duration=50.0)]
                    )
                )
            )
            channel = rec.snapshot()["faults"]
        finally:
            flightrec.disable()
        kinds = [entry["kind"] for entry in channel]
        assert "crash" in kinds and "recover" in kinds


# ---------------------------------------------------------------------------
# The churn study driver
# ---------------------------------------------------------------------------

class TestFaultStudy:
    def test_study_runs_and_writes_attrib_manifest(self, tmp_path):
        from repro.experiments.attrib import points_from_manifest
        from repro.experiments.config import ScaleProfile
        from repro.experiments.faultstudy import fault_report, run_fault_study

        manifest = tmp_path / "faults.json"
        # the real profiles are heavyweight; a miniature one keeps this
        # an actual multi-scale study at unit-test cost
        tiny = ScaleProfile(
            name="tiny",
            base_resources=6,
            base_schedulers=2,
            fixed_resources=6,
            fixed_schedulers=2,
            base_rate_per_resource=0.0008,
            horizon=1500.0,
            drain=4000.0,
            scales=(1, 2),
            sa_iterations=1,
        )
        result = run_fault_study(
            profile=tiny,
            rms=["LOWEST"],
            plan=FaultPlan(resource_mttf=500.0, resource_mttr=60.0),
            manifest_path=manifest,
        )
        points = result.series["LOWEST"]
        assert [p.scale for p in points] == [1.0, 2.0]
        assert all(p.faults_g > 0 for p in points)
        report = fault_report(result)
        assert "G:faults" in report and "LOWEST" in report
        loaded = points_from_manifest(manifest)
        assert {p.rms for p in loaded} == {"LOWEST"}
        assert all(p.attribution for p in loaded)
