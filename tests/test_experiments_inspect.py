"""Tests for the post-run inspection report."""

import pytest

from repro.experiments import SimulationConfig, build_system
from repro.experiments.inspect import (
    failed_job_forensics,
    hotspots,
    inspection_report,
    overhead_breakdown,
)
from repro.grid import JobState


@pytest.fixture(scope="module")
def finished_system():
    cfg = SimulationConfig(
        rms="LOWEST",
        n_schedulers=3,
        n_resources=9,
        workload_rate=0.005,
        update_interval=10.0,
        horizon=3000.0,
        drain=30000.0,
        seed=2,
    )
    system = build_system(cfg)
    system.sim.run(until=cfg.horizon)
    deadline = cfg.horizon + cfg.drain
    while system.sim.now < deadline and any(
        j.state != JobState.COMPLETED for j in system.jobs
    ):
        system.sim.run(until=min(deadline, system.sim.now + 2000.0))
    return system


class TestOverheadBreakdown:
    def test_sums_to_G_and_shares_to_one(self, finished_system):
        rows = overhead_breakdown(finished_system)
        total = sum(r[1] for r in rows)
        assert total == pytest.approx(finished_system.ledger.G)
        assert sum(r[2] for r in rows) == pytest.approx(1.0)

    def test_sorted_descending(self, finished_system):
        rows = overhead_breakdown(finished_system)
        amounts = [r[1] for r in rows]
        assert amounts == sorted(amounts, reverse=True)

    def test_only_g_categories(self, finished_system):
        assert all(r[0].startswith("g.") for r in overhead_breakdown(finished_system))


class TestHotspots:
    def test_ranked_by_busy_time(self, finished_system):
        rows = hotspots(finished_system, top=4)
        fracs = [r[1] for r in rows]
        assert fracs == sorted(fracs, reverse=True)
        assert all(0.0 <= f <= 1.0 for f in fracs)

    def test_top_limits_rows(self, finished_system):
        assert len(hotspots(finished_system, top=2)) == 2


class TestForensics:
    def test_failed_jobs_have_timelines(self, finished_system):
        lines = failed_job_forensics(finished_system)
        failures = [
            j for j in finished_system.jobs
            if j.state == JobState.COMPLETED and not j.successful
        ]
        if failures:
            assert any("MISSED BOUND" in l for l in lines)
        else:
            assert lines == []


class TestFullReport:
    def test_report_renders_all_sections(self, finished_system):
        out = inspection_report(finished_system)
        assert "overhead breakdown" in out
        assert "Busiest RMS servers" in out
        assert "Cluster service timeline" in out
        assert "g.update_rx" in out or "g.estimator" in out
