"""Overhead attribution: the ledger decomposition, its conservation
invariant, round trips through cache/manifest, and the report."""

import json
import math

import pytest

from repro.core import CostLedger
from repro.core.ledger import Category, flatten_source
from repro.experiments import SimulationConfig, run_simulation
from repro.experiments.attrib import (
    AttribPoint,
    attrib_report,
    check_conservation,
    component_of,
    load_points,
    points_from_manifest,
    rollup_components,
)
from repro.experiments.parallel.cache import (
    metrics_from_jsonable,
    metrics_to_jsonable,
)


def tiny_config(rms="LOWEST", **kw):
    kw.setdefault("n_schedulers", 3)
    kw.setdefault("n_resources", 9)
    kw.setdefault("workload_rate", 0.004)
    kw.setdefault("horizon", 2000.0)
    kw.setdefault("drain", 3000.0)
    kw.setdefault("update_interval", 20.0)
    return SimulationConfig(rms=rms, **kw)


class TestLedgerAttribution:
    def test_cells_keyed_by_category_and_source(self):
        ledger = CostLedger()
        src = ("scheduler", "sched0", "job_submit")
        ledger.charge(Category.SCHEDULE, 1.0, src)
        ledger.charge(Category.SCHEDULE, 2.0, src)
        ledger.charge(Category.SCHEDULE, 4.0)  # untagged
        attr = ledger.attribution()
        assert attr == {
            "g.schedule": 4.0,
            "g.schedule|scheduler|sched0|job_submit": 3.0,
        }
        assert ledger.total(Category.SCHEDULE) == 7.0

    def test_flatten_source(self):
        assert flatten_source("g.schedule", None) == "g.schedule"
        assert (
            flatten_source("g.schedule", ("scheduler", "s0", "job_submit"))
            == "g.schedule|scheduler|s0|job_submit"
        )

    def test_conservation_exact_over_many_small_charges(self):
        # 0.1 is not representable in binary; thousands of such charges
        # across interleaved sources is exactly the case where a naive
        # "running total vs regrouped sum" comparison drifts in the ulps.
        ledger = CostLedger()
        for i in range(5000):
            src = ("scheduler", f"s{i % 7}", "job_submit")
            ledger.charge(Category.SCHEDULE, 0.1, src)
            ledger.charge(Category.USEFUL, 0.7, ("resource", f"r{i % 5}", "execution"))
        ledger.check_conservation()  # must not raise
        attr = ledger.attribution()
        assert math.fsum(v for k, v in attr.items() if k.startswith("g.")) == ledger.G
        assert math.fsum(v for k, v in attr.items() if k.startswith("f.")) == ledger.F

    def test_observer_sees_charges(self):
        seen = []
        ledger = CostLedger()
        ledger.observer = lambda cat, amount, src: seen.append((cat, amount, src))
        ledger.charge(Category.USEFUL, 5.0, ("resource", "r0", "execution"))
        assert seen == [("f.useful", 5.0, ("resource", "r0", "execution"))]

    def test_rejected_charge_not_observed(self):
        seen = []
        ledger = CostLedger()
        ledger.observer = lambda *a: seen.append(a)
        with pytest.raises(ValueError):
            ledger.charge(Category.USEFUL, -1.0)
        assert seen == []


class TestRunAttribution:
    def test_run_metrics_carry_conserved_attribution(self):
        metrics = run_simulation(tiny_config())
        attr = metrics.attribution
        assert attr, "runs must record an attribution decomposition"
        point = AttribPoint(
            label="t", rms="LOWEST", scale=1.0,
            F=metrics.record.F, G=metrics.record.G, H=metrics.record.H,
            attribution=attr,
        )
        assert check_conservation(point) == []
        # every overhead charge is tagged: no bare g./h. keys survive
        assert all("|" in k for k in attr if not k.startswith("f."))

    def test_attribution_survives_cache_round_trip_exactly(self):
        metrics = run_simulation(tiny_config(rms="CENTRAL"))
        back = metrics_from_jsonable(json.loads(json.dumps(metrics_to_jsonable(metrics))))
        assert back.attribution == metrics.attribution
        assert back.traffic == metrics.traffic
        point = AttribPoint(
            label="t", rms="CENTRAL", scale=1.0,
            F=back.record.F, G=back.record.G, H=back.record.H,
            attribution=back.attribution,
        )
        assert check_conservation(point) == []

    def test_traffic_summary_recorded(self):
        metrics = run_simulation(tiny_config())
        assert metrics.traffic
        for counters in metrics.traffic.values():
            assert set(counters) == {"messages", "payload", "link_payload", "hops"}
            assert counters["messages"] >= 1


class TestAttribHelpers:
    def test_component_of(self):
        assert component_of("g.schedule|scheduler|s0|job_submit") == "scheduler"
        assert component_of("g.schedule") == "untagged"

    def test_rollup_components(self):
        attr = {
            "g.schedule|scheduler|s0|job_submit": 1.0,
            "g.schedule|scheduler|s1|job_submit": 2.0,
            "g.estimator|estimator|e0|status_update": 4.0,
            "f.useful|resource|r0|execution": 100.0,
        }
        assert rollup_components(attr) == {"estimator": 4.0, "scheduler": 3.0}
        assert rollup_components(attr, prefix="f.") == {"resource": 100.0}

    def test_check_conservation_flags_mismatch(self):
        point = AttribPoint(
            label="x", rms="LOWEST", scale=2.0, F=1.0, G=5.0, H=0.0,
            attribution={"f.useful|r|r0|execution": 1.0, "g.schedule|s|s0|m": 4.0},
        )
        violations = check_conservation(point)
        assert len(violations) == 1
        assert "g.*" in violations[0] and "k=2" in violations[0]


def synthetic_points():
    def point(scale, sched, est):
        attr = {
            "f.useful|resource|r0|execution": 100.0 * scale,
            "g.schedule|scheduler|s0|job_submit": sched,
            "g.estimator|estimator|e0|status_update": est,
            "h.job_control|resource|r0|job_dispatch": 1.0,
        }
        return AttribPoint(
            label="case1:LOWEST", rms="LOWEST", scale=scale,
            F=100.0 * scale, G=math.fsum([sched, est]), H=1.0,
            attribution=attr,
        )

    return [point(1.0, 10.0, 5.0), point(2.0, 30.0, 6.0), point(3.0, 50.0, 7.0)]


class TestReport:
    def test_report_contents(self):
        out = attrib_report(synthetic_points())
        assert "conservation: exact for all 3 points" in out
        assert "case1:LOWEST" in out
        assert "G:scheduler" in out and "G:estimator" in out
        # scheduler grows 20/scale step, estimator 1 — ranked first
        assert "scheduler=+20.00" in out
        assert "top" in out and "g.schedule|scheduler|s0|job_submit" in out

    def test_report_flags_violation(self):
        points = synthetic_points()
        points[1].G += 1.0  # break the middle point
        out = attrib_report(points)
        assert "CONSERVATION VIOLATED" in out

    def test_rms_filter_and_empty(self):
        assert "no attribution data" in attrib_report(synthetic_points(), rms="CENTRAL")

    def test_top_limits_contributors(self):
        out = attrib_report(synthetic_points(), top=1)
        assert "top 1 overhead contributors" in out


class TestManifestLoader:
    def test_points_from_manifest(self, tmp_path):
        manifest = {
            "version": 2,
            "completed": {
                "ci:seed7:sa10:scales[1,2]:warm1:spec0:case1:LOWEST": {
                    "result": {
                        "points": [
                            {
                                "scale": 1.0,
                                "record": {"F": 100.0, "G": 15.0, "H": 1.0},
                                "attribution": {
                                    "f.useful|resource|r0|execution": 100.0,
                                    "g.schedule|scheduler|s0|m": 15.0,
                                    "h.job_control|resource|r0|m": 1.0,
                                },
                            }
                        ]
                    },
                    "metrics": [],
                }
            },
        }
        path = tmp_path / "study.json"
        path.write_text(json.dumps(manifest))
        points = points_from_manifest(path)
        assert len(points) == 1
        assert points[0].label == "case1:LOWEST"
        assert points[0].rms == "LOWEST"
        assert check_conservation(points[0]) == []

    def test_not_a_manifest_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValueError):
            points_from_manifest(path)

    def test_load_points_missing_source(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_points(tmp_path / "nope")


@pytest.mark.slow
class TestStudyConservation:
    """The acceptance criterion: conservation holds exactly for every
    tuned point of a real (micro) study, through the manifest."""

    def test_every_study_scale_conserves_exactly(self, tmp_path):
        from repro.experiments import Study
        from repro.experiments.config import ScaleProfile

        micro = ScaleProfile(
            name="micro",
            base_resources=8,
            base_schedulers=4,
            fixed_resources=8,
            fixed_schedulers=4,
            base_rate_per_resource=0.00028,
            horizon=3000.0,
            drain=20000.0,
            scales=(1, 2),
            sa_iterations=2,
        )
        manifest_path = tmp_path / "manifests" / "study.json"
        study = Study(
            profile=micro, rms=["CENTRAL"], seed=5, manifest_path=manifest_path
        )
        fig = study.figure(2)
        series = fig.series["CENTRAL"]
        for point in series.result.points:
            assert point.attribution, "tuned points must carry attribution"
            ap = AttribPoint(
                label="micro", rms="CENTRAL", scale=point.scale,
                F=point.record.F, G=point.record.G, H=point.record.H,
                attribution=point.attribution,
            )
            assert check_conservation(ap) == []
        # and identically so after the manifest round trip
        loaded = points_from_manifest(manifest_path)
        assert len(loaded) == len(series.result.points)
        for ap in loaded:
            assert check_conservation(ap) == []
