"""Smoke tests: every example script runs to completion.

Examples are the quickstart surface of the library; a broken example is
a broken deliverable.  Each is executed in-process (imported as a
module and its ``main()`` called) with output captured.  The slowest
are marked ``slow``.
"""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def run_example(name, capsys):
    path = os.path.join(EXAMPLES_DIR, name)
    spec = importlib.util.spec_from_file_location(f"example_{name[:-3]}", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    mod.main()
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "efficiency" in out
    assert "RMS overhead" in out


def test_compare_rms(capsys):
    out = run_example("compare_rms.py", capsys)
    for rms in ("CENTRAL", "LOWEST", "Sy-I"):
        assert rms in out


@pytest.mark.slow
def test_custom_rms(capsys):
    out = run_example("custom_rms.py", capsys)
    assert "TWO-CHOICE" in out
    assert "polling overhead" in out


@pytest.mark.slow
def test_failure_injection(capsys):
    out = run_example("failure_injection.py", capsys)
    assert "loss=50%" in out


@pytest.mark.slow
def test_dag_workloads(capsys):
    out = run_example("dag_workloads.py", capsys)
    assert "staged edges" in out


@pytest.mark.slow
def test_replication_study(capsys):
    out = run_example("replication_study.py", capsys)
    assert "95% CI" in out


@pytest.mark.slow
def test_inspect_run(capsys):
    out = run_example("inspect_run.py", capsys)
    assert "overhead breakdown" in out
    assert "Busiest RMS servers" in out
