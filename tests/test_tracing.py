"""Integration tests for causal job tracing.

The load-bearing contract is **byte-identity**: a passive trace plan
(spans recorded at zero charge rate) must leave every F/G/H result,
attribution cell, and cache key bit-for-bit identical to an untraced
run — across worker counts, both kernel backends, and the fluid
traffic mode.  On top of that: sampling must be a pure hash (never a
simulation RNG draw), the per-job span list must stay bounded while
the terminal ``complete`` span always lands, an active plan's
recording overhead must land in ``g.trace`` exactly (spans x rate)
without touching F, fault plans must surface as ``failed``/
``redispatch`` spans and a ``recovery_wait`` phase, and the flight
recorder must see the sampled spans in its bounded ``trace`` ring.
"""

import json
import math
from dataclasses import replace

import pytest

from repro.experiments import SimulationConfig, run_simulation
from repro.experiments.parallel import ExperimentEngine, metrics_json_bytes
from repro.experiments.parallel.cache import metrics_to_jsonable
from repro.experiments.parallel.hashing import config_key
from repro.faults.plan import CrashEvent, FaultPlan
from repro.fluid.plan import FluidPlan
from repro.telemetry import flightrec
from repro.telemetry.critpath import aggregate_phases
from repro.telemetry.tracing import (
    ENV_CHARGE,
    ENV_MAX_EVENTS,
    ENV_SAMPLE,
    TracePlan,
    job_is_sampled,
    resolve_trace_plan,
    trace_id_for,
    trace_plan_from_jsonable,
    trace_plan_to_jsonable,
)


def small_config(rms="LOWEST", **kw):
    """A small but non-trivial system (~10 ms per run)."""
    kw.setdefault("n_schedulers", 3)
    kw.setdefault("n_resources", 9)
    kw.setdefault("workload_rate", 0.004)
    kw.setdefault("horizon", 2000.0)
    kw.setdefault("drain", 3000.0)
    kw.setdefault("update_interval", 20.0)
    kw.setdefault("seed", 11)
    return SimulationConfig(rms=rms, **kw)


PASSIVE = TracePlan(sample=1.0, charge_rate=0.0)
ACTIVE = TracePlan(sample=1.0, charge_rate=0.02)


def stripped_bytes(metrics) -> bytes:
    """Canonical metrics bytes with the trace payload removed."""
    payload = metrics_to_jsonable(metrics)
    payload.pop("trace", None)
    return json.dumps(payload, sort_keys=True).encode()


class TestPlan:
    def test_default_plan_is_off(self):
        plan = TracePlan()
        assert plan.sample == 0.0
        assert not plan.is_enabled
        assert not plan.is_active

    def test_passive_vs_active(self):
        assert PASSIVE.is_enabled and not PASSIVE.is_active
        assert ACTIVE.is_enabled and ACTIVE.is_active

    @pytest.mark.parametrize("sample", [-0.1, 1.5, math.nan, math.inf])
    def test_rejects_bad_sample(self, sample):
        with pytest.raises(ValueError):
            TracePlan(sample=sample)

    def test_rejects_bad_charge_and_bound(self):
        with pytest.raises(ValueError):
            TracePlan(charge_rate=-0.01)
        with pytest.raises(ValueError):
            TracePlan(max_events=2)

    def test_jsonable_round_trip(self):
        plan = TracePlan(sample=0.25, charge_rate=0.1, max_events=16)
        assert trace_plan_from_jsonable(trace_plan_to_jsonable(plan)) == plan

    def test_resolve_env_precedence(self, monkeypatch):
        monkeypatch.setenv(ENV_SAMPLE, "0.5")
        monkeypatch.setenv(ENV_CHARGE, "0.3")
        monkeypatch.setenv(ENV_MAX_EVENTS, "32")
        plan = resolve_trace_plan()
        assert plan == TracePlan(sample=0.5, charge_rate=0.3, max_events=32)
        # explicit knobs beat the environment
        plan = resolve_trace_plan(sample=0.1, charge_rate=0.0, max_events=8)
        assert plan == TracePlan(sample=0.1, charge_rate=0.0, max_events=8)

    def test_resolve_default_sample_when_unset(self, monkeypatch):
        monkeypatch.delenv(ENV_SAMPLE, raising=False)
        assert resolve_trace_plan().sample == 0.0
        assert resolve_trace_plan(default_sample=1.0).sample == 1.0
        # an env value still beats the caller's default
        monkeypatch.setenv(ENV_SAMPLE, "0.25")
        assert resolve_trace_plan(default_sample=1.0).sample == 0.25

    def test_resolve_rejects_garbled_env(self, monkeypatch):
        monkeypatch.setenv(ENV_SAMPLE, "lots")
        with pytest.raises(ValueError, match=ENV_SAMPLE):
            resolve_trace_plan()


class TestSampling:
    """The predicate is a pure hash of (seed, job id) — no RNG stream."""

    def test_edges(self):
        assert not job_is_sampled(7, 3, 0.0)
        assert job_is_sampled(7, 3, 1.0)

    def test_deterministic(self):
        picks = [job_is_sampled(7, j, 0.5) for j in range(100)]
        assert picks == [job_is_sampled(7, j, 0.5) for j in range(100)]
        assert any(picks) and not all(picks)

    def test_fraction_roughly_honoured(self):
        hits = sum(job_is_sampled(7, j, 0.25) for j in range(4000))
        assert 0.20 < hits / 4000 < 0.30

    def test_seed_changes_the_sampled_set(self):
        a = {j for j in range(500) if job_is_sampled(7, j, 0.5)}
        b = {j for j in range(500) if job_is_sampled(8, j, 0.5)}
        assert a != b

    def test_trace_id_is_stable_hex(self):
        tid = trace_id_for(7, 42)
        assert tid == trace_id_for(7, 42)
        assert len(tid) == 16 and int(tid, 16) >= 0
        assert tid != trace_id_for(8, 42)


class TestByteIdentity:
    """Tentpole contract: passive tracing changes nothing, anywhere."""

    @pytest.mark.parametrize("rms", ["LOWEST", "CENTRAL", "S-I"])
    def test_passive_plan_leaves_results_bit_identical(self, rms):
        plain = run_simulation(small_config(rms))
        traced = run_simulation(replace(small_config(rms), trace=PASSIVE))
        assert traced.trace is not None
        assert stripped_bytes(traced) == stripped_bytes(plain)
        assert traced.record.F == plain.record.F
        assert traced.attribution == plain.attribution

    @pytest.mark.parametrize("backend", ["reference", "fast"])
    def test_passive_plan_identity_on_both_kernels(self, backend):
        base = replace(small_config(), kernel_backend=backend)
        plain = run_simulation(base)
        traced = run_simulation(replace(base, trace=PASSIVE))
        assert stripped_bytes(traced) == stripped_bytes(plain)

    def test_trace_payload_identical_across_backends(self):
        runs = [
            run_simulation(
                replace(small_config(), kernel_backend=b, trace=PASSIVE)
            )
            for b in ("reference", "fast")
        ]
        assert metrics_json_bytes(runs[0]) == metrics_json_bytes(runs[1])

    def test_passive_plan_identity_under_fluid_traffic(self):
        base = replace(small_config(), fluid=FluidPlan(mode="fluid"))
        plain = run_simulation(base)
        traced = run_simulation(replace(base, trace=PASSIVE))
        assert traced.trace is not None
        assert stripped_bytes(traced) == stripped_bytes(plain)

    def test_passive_plan_shares_the_cache_key(self):
        base = small_config()
        assert config_key(replace(base, trace=PASSIVE)) == config_key(base)
        assert config_key(
            replace(base, trace=TracePlan(sample=0.5, charge_rate=0.0))
        ) == config_key(base)

    def test_active_plan_changes_the_cache_key(self):
        base = small_config()
        assert config_key(replace(base, trace=ACTIVE)) != config_key(base)

    def test_results_identical_across_worker_counts(self):
        configs = [
            replace(small_config(rms), trace=PASSIVE)
            for rms in ("LOWEST", "CENTRAL")
        ]
        with ExperimentEngine(jobs=1) as serial, ExperimentEngine(jobs=4) as pool:
            a = serial.run_many(configs)
            b = pool.run_many(configs)
        for x, y in zip(a, b):
            assert metrics_json_bytes(x) == metrics_json_bytes(y)

    def test_untraced_metrics_carry_no_trace_key(self):
        payload = metrics_to_jsonable(run_simulation(small_config()))
        assert "trace" not in payload


class TestRecorder:
    def test_payload_shape_and_span_order(self):
        m = run_simulation(replace(small_config(), trace=PASSIVE))
        trace = m.trace
        assert trace["v"] == 1
        assert trace["sampled"] == len(trace["jobs"]) > 0
        assert trace["recorded"] > 0 and trace["dropped"] == 0
        for job_id, rec in trace["jobs"].items():
            assert rec["trace_id"] == trace_id_for(11, int(job_id))
            names = [e["name"] for e in rec["events"]]
            assert names[0] == "sched_deliver"  # armed before the workload
            times = [e["t"] for e in rec["events"]]
            assert times == sorted(times)
            if rec["successful"]:
                assert "complete" in names
                assert rec["response"] == pytest.approx(
                    rec["completion"] - rec["arrival"]
                )

    def test_partial_sampling_matches_the_predicate(self):
        plan = TracePlan(sample=0.5, charge_rate=0.0)
        m = run_simulation(replace(small_config(), trace=plan))
        assert 0 < m.trace["sampled"]
        for job_id in m.trace["jobs"]:
            assert job_is_sampled(11, int(job_id), 0.5)

    def test_span_bound_holds_but_complete_always_lands(self):
        plan = TracePlan(sample=1.0, charge_rate=0.0, max_events=4)
        m = run_simulation(replace(small_config(), trace=plan))
        assert m.trace["dropped"] > 0
        for rec in m.trace["jobs"].values():
            # the terminal span may exceed the bound by one entry
            assert len(rec["events"]) <= plan.max_events + 1
            if rec["successful"]:
                assert any(e["name"] == "complete" for e in rec["events"])
        # truncated traces still telescope to the turnaround
        agg = aggregate_phases(m.trace)
        assert agg["jobs"] > 0
        assert agg["max_residual"] < 1e-6

    def test_message_hops_carry_parent_edges(self):
        m = run_simulation(replace(small_config(), trace=PASSIVE))
        parents = [
            e["parent"]
            for rec in m.trace["jobs"].values()
            for e in rec["events"]
            if "parent" in e
        ]
        assert parents  # dispatch/complete hops stitch the DAG
        for rec in m.trace["jobs"].values():
            for i, e in enumerate(rec["events"]):
                if "parent" in e:
                    assert 0 <= e["parent"] < i

    def test_latency_histograms_recorded_per_message_class(self):
        m = run_simulation(replace(small_config(), trace=PASSIVE))
        latency = m.trace["latency"]
        assert "job_dispatch" in latency and "status_update" in latency
        for snap in latency.values():
            assert snap["count"] > 0
            assert snap["p50"] <= snap["p95"] <= snap["p99"]


class TestCharging:
    def test_active_plan_charges_g_trace_exactly(self):
        plain = run_simulation(small_config())
        traced = run_simulation(replace(small_config(), trace=ACTIVE))
        trace_g = math.fsum(
            v for k, v in traced.attribution.items() if k.startswith("g.trace")
        )
        assert trace_g == pytest.approx(
            traced.trace["recorded"] * ACTIVE.charge_rate
        )
        assert traced.record.G == pytest.approx(plain.record.G + trace_g)
        assert traced.record.F == plain.record.F  # charges never touch behaviour

    def test_passive_plan_never_touches_the_ledger(self):
        m = run_simulation(replace(small_config(), trace=PASSIVE))
        assert not any(k.startswith("g.trace") for k in m.attribution)


class TestFaultComposition:
    def test_crashes_surface_as_recovery_spans(self):
        plan = FaultPlan(
            crashes=tuple(
                CrashEvent(resource=r, at=600.0, duration=900.0)
                for r in range(4)
            )
        )
        m = run_simulation(
            replace(small_config(), trace=PASSIVE, faults=plan)
        )
        names = {
            e["name"]
            for rec in m.trace["jobs"].values()
            for e in rec["events"]
        }
        assert "failed" in names and "redispatch" in names
        agg = aggregate_phases(m.trace)
        assert "recovery_wait" in agg["phases"]
        assert agg["max_residual"] < 1e-6


class TestFlightRing:
    def test_sampled_spans_feed_the_trace_ring(self, tmp_path):
        flightrec.enable(tmp_path, capacity=32)
        try:
            run_simulation(replace(small_config(), trace=PASSIVE))
            snap = flightrec.current().snapshot()
        finally:
            flightrec.disable()
        ring = snap["trace"]
        assert 0 < len(ring) <= 32  # bounded window of the latest spans
        assert all({"job", "span", "t"} <= set(entry) for entry in ring)
