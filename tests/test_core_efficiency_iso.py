"""Tests for the efficiency model and the isoefficiency algebra."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Category,
    CostLedger,
    EfficiencyRecord,
    IsoefficiencyConstants,
    check_eq1,
    check_eq2,
    isoefficiency_report,
    normalize,
)


def rec(F, G, H=1.0):
    return EfficiencyRecord(F=F, G=G, H=H)


class TestEfficiencyRecord:
    def test_efficiency_formula(self):
        assert rec(40.0, 50.0, 10.0).efficiency == pytest.approx(0.4)

    def test_zero_total(self):
        assert rec(0.0, 0.0, 0.0).efficiency == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            EfficiencyRecord(F=-1.0, G=0.0, H=0.0)

    def test_from_ledger(self):
        l = CostLedger()
        l.charge(Category.USEFUL, 8.0)
        l.charge(Category.POLL, 2.0)
        l.charge(Category.JOB_CONTROL, 1.0)
        r = EfficiencyRecord.from_ledger(l)
        assert (r.F, r.G, r.H) == (8.0, 2.0, 1.0)

    def test_total(self):
        assert rec(1.0, 2.0, 3.0).total == 6.0


class TestNormalize:
    def test_base_is_one(self):
        curves = normalize([1, 2], [rec(10, 5, 2), rec(20, 10, 4)])
        assert curves.f[0] == curves.g[0] == curves.h[0] == 1.0
        assert curves.f[1] == 2.0 and curves.g[1] == 2.0 and curves.h[1] == 2.0

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            normalize([1], [rec(1, 1), rec(2, 2)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            normalize([], [])

    def test_zero_base_rejected(self):
        with pytest.raises(ValueError):
            normalize([1], [rec(0.0, 1.0, 1.0)])
        with pytest.raises(ValueError):
            normalize([1], [rec(1.0, 0.0, 1.0)])


class TestIsoefficiencyConstants:
    def test_from_base(self):
        # E0 = 40/(40+50+10) = 0.4, alpha = 2.5
        c = IsoefficiencyConstants.from_base(rec(40.0, 50.0, 10.0))
        assert c.alpha == pytest.approx(2.5)
        assert c.e0 == pytest.approx(0.4)
        # c = G0/((alpha-1)F0) = 50/(1.5*40)
        assert c.c == pytest.approx(50.0 / 60.0)
        assert c.c_prime == pytest.approx(10.0 / 60.0)

    def test_equation1_identity_at_base(self):
        """f = c*g + c'*h must hold EXACTLY at the base point (all 1)."""
        c = IsoefficiencyConstants.from_base(rec(40.0, 50.0, 10.0))
        assert c.c + c.c_prime == pytest.approx(1.0)

    def test_degenerate_base_rejected(self):
        with pytest.raises(ValueError):
            IsoefficiencyConstants.from_base(rec(0.0, 1.0, 1.0))
        with pytest.raises(ValueError):
            IsoefficiencyConstants.from_base(rec(1.0, 0.0, 0.0))


class TestConditions:
    def test_eq1_holds_for_exactly_isoefficient_path(self):
        """Scale F, G, H by the same factor: E constant, Eq.1 exact."""
        records = [rec(40.0 * k, 50.0 * k, 10.0 * k) for k in (1, 2, 3)]
        constants = IsoefficiencyConstants.from_base(records[0])
        curves = normalize([1, 2, 3], records)
        assert check_eq1(constants, curves) == [True, True, True]

    def test_eq1_fails_when_overhead_outgrows(self):
        records = [rec(40.0, 50.0, 10.0), rec(80.0, 300.0, 20.0)]
        constants = IsoefficiencyConstants.from_base(records[0])
        curves = normalize([1, 2], records)
        assert check_eq1(constants, curves, rtol=0.05) == [True, False]

    def test_eq2_detects_unscalable_point(self):
        # g grows 4x while f grows 2x -> at k=2, f=2, c*g: c=50/60, g=4 -> 3.33 > 2
        records = [rec(40.0, 50.0, 10.0), rec(80.0, 200.0, 20.0)]
        constants = IsoefficiencyConstants.from_base(records[0])
        curves = normalize([1, 2], records)
        assert check_eq2(constants, curves) == [True, False]

    def test_eq2_base_always_true(self):
        """At base: f=g=1 and c < 1 (since H > 0), so Eq.2 holds."""
        constants = IsoefficiencyConstants.from_base(rec(40.0, 50.0, 10.0))
        curves = normalize([1], [rec(40.0, 50.0, 10.0)])
        assert check_eq2(constants, curves) == [True]

    def test_report_structure(self):
        records = [rec(40.0 * k, 50.0 * k, 10.0 * k) for k in (1, 2)]
        rep = isoefficiency_report([1, 2], records)
        assert rep["eq1_ok"] == [True, True]
        assert rep["eq2_ok"] == [True, True]
        assert rep["efficiencies"][0] == pytest.approx(0.4)
        assert rep["eq1_residuals"][0] == pytest.approx(0.0)


@settings(max_examples=100, deadline=None)
@given(
    F=st.floats(min_value=1.0, max_value=1e6),
    G=st.floats(min_value=1.0, max_value=1e6),
    H=st.floats(min_value=0.1, max_value=1e5),
    k=st.floats(min_value=1.0, max_value=10.0),
)
def test_proportional_scaling_preserves_isoefficiency(F, G, H, k):
    """For ANY base record with positive components, scaling all three
    by k keeps E constant and satisfies both conditions — the algebraic
    heart of the paper's derivation."""
    base = rec(F, G, H)
    scaled = rec(F * k, G * k, H * k)
    assert scaled.efficiency == pytest.approx(base.efficiency)
    constants = IsoefficiencyConstants.from_base(base)
    curves = normalize([1, 1 + k], [base, scaled])
    assert all(check_eq1(constants, curves, rtol=1e-6))
    assert all(check_eq2(constants, curves))
