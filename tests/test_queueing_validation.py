"""Queueing-theory validation of the simulation substrate.

The Resource (for exponential service) and the MessageServer (for
deterministic service) are textbook queues; under Poisson arrivals
their simulated steady-state statistics must match M/M/1 and M/D/1
theory.  These tests catch subtle kernel bugs (event ordering, clock
drift, busy-time accounting) that unit tests cannot.
"""

import math

import numpy as np
import pytest

from repro.core import CostLedger
from repro.grid import CostModel, Resource
from repro.grid.jobs import Job
from repro.sim import MessageServer, RngHub, Simulator
from repro.workload import JobSpec


def make_job(job_id, arrival, execution):
    return Job(
        JobSpec(
            job_id=job_id,
            arrival_time=arrival,
            execution_time=execution,
            requested_time=execution * 2,
            benefit_factor=5.0,
            submit_cluster=0,
            job_class="LOCAL",
        )
    )


class TestMM1Resource:
    @pytest.mark.slow
    def test_mm1_mean_number_in_system(self):
        """M/M/1 at rho = 0.5: E[N] = rho/(1-rho) = 1.0, E[T] = 1/(mu-lam)."""
        lam, mu = 0.5, 1.0
        sim = Simulator()
        ledger = CostLedger()
        res = Resource(
            sim, "r", 0, 0, 0, service_rate=1.0, ledger=ledger,
            costs=CostModel(job_control=0.0, data_mgmt=0.0),
        )
        rng = RngHub(42).stream("mm1")
        horizon = 400_000.0
        t, jid, jobs = 0.0, 0, []
        while True:
            t += rng.exponential(1.0 / lam)
            if t >= horizon:
                break
            job = make_job(jid, t, float(rng.exponential(1.0 / mu)))
            jobs.append(job)
            job.mark_placed(0)
            sim.schedule_at(t, res.accept_job, job)
            jid += 1
        sim.run()
        done = [j for j in jobs if j.completion_time is not None]
        resp = np.array([j.response_time for j in done])
        # E[T] = 1/(mu - lam) = 2.0
        assert resp.mean() == pytest.approx(2.0, rel=0.06)
        # utilization = rho = 0.5
        assert res.util_stat.mean(horizon) == pytest.approx(0.5, rel=0.05)

    def test_low_load_response_is_service_time(self):
        """At near-zero load, response ~ service time (no queueing)."""
        sim = Simulator()
        res = Resource(
            sim, "r", 0, 0, 0, service_rate=2.0, ledger=CostLedger(),
            costs=CostModel(),
        )
        jobs = [make_job(i, 1000.0 * i, 50.0) for i in range(20)]
        for j in jobs:
            j.mark_placed(0)
            sim.schedule_at(j.spec.arrival_time, res.accept_job, j)
        sim.run()
        for j in jobs:
            assert j.response_time == pytest.approx(25.0)  # 50/2.0


class _FixedServer(MessageServer):
    def __init__(self, sim, st):
        super().__init__(sim, "md1", ledger=None)
        self._st = st
        self.sojourn = []

    def service_time(self, message):
        return self._st

    def cost_category(self, message):
        return "g.schedule"

    def handle(self, message):
        self.sojourn.append(self.sim.now - message)


class TestMD1MessageServer:
    @pytest.mark.slow
    def test_md1_mean_wait(self):
        """M/D/1: Wq = rho*S / (2(1-rho)); sojourn = Wq + S."""
        lam, s = 0.5, 1.0  # rho = 0.5
        sim = Simulator()
        srv = _FixedServer(sim, s)
        rng = RngHub(7).stream("md1")
        horizon = 200_000.0
        t = 0.0
        n = 0
        while True:
            t += rng.exponential(1.0 / lam)
            if t >= horizon:
                break
            sim.schedule_at(t, srv.deliver, t)  # message payload = arrival time
            n += 1
        sim.run()
        expected_sojourn = s + (0.5 * s) / (2 * (1 - 0.5))  # 1.5
        assert np.mean(srv.sojourn) == pytest.approx(expected_sojourn, rel=0.05)
        # busy fraction = rho
        assert srv.busy_time / horizon == pytest.approx(0.5, rel=0.05)

    def test_overload_queue_grows_linearly(self):
        """rho > 1: backlog grows ~ (lam*S - 1) per unit time."""
        sim = Simulator()
        srv = _FixedServer(sim, 2.0)  # capacity 0.5/unit
        for i in range(1000):
            sim.schedule_at(float(i), srv.deliver, float(i))  # lam = 1
        sim.run(until=1000.0)
        # after 1000 units, ~500 served, ~500 waiting
        assert srv.served == pytest.approx(500, abs=5)
        assert srv.queue_length == pytest.approx(499, abs=5)
