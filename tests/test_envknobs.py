"""Environment-knob registry tests: precedence, typing, completeness.

The contract under test: every ``REPRO_*`` variable the source tree
consults is declared in one table, each lookup resolves as
``override > environment > default``, and falsiness is uniform.
"""

import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro import envknobs
from repro.envknobs import (
    KNOBS,
    environ_get,
    get_bool,
    get_float,
    get_int,
    get_str,
    knob_rows,
    raw,
    render_knob_table,
)

SRC = Path(__file__).resolve().parent.parent / "src"


class TestPrecedence:
    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "8")
        assert get_int("REPRO_JOBS", override=2, default=1) == 2

    def test_env_beats_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "8")
        assert get_int("REPRO_JOBS", default=1) == 8

    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert get_int("REPRO_JOBS", default=1) == 1

    def test_blank_env_counts_as_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "   ")
        assert raw("REPRO_CACHE_DIR") is None
        assert get_str("REPRO_CACHE_DIR", default="d") == "d"


class TestTyping:
    def test_malformed_int_names_the_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "four")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            get_int("REPRO_JOBS")

    def test_malformed_float_names_the_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERIES_WINDOW", "wide")
        with pytest.raises(ValueError, match="REPRO_SERIES_WINDOW"):
            get_float("REPRO_SERIES_WINDOW")

    @pytest.mark.parametrize("word", ["0", "false", "No", "OFF"])
    def test_uniform_false_words(self, monkeypatch, word):
        monkeypatch.setenv("REPRO_TELEMETRY", word)
        assert get_bool("REPRO_TELEMETRY") is False

    @pytest.mark.parametrize("word", ["1", "true", "yes", "on", "anything"])
    def test_everything_else_is_true(self, monkeypatch, word):
        monkeypatch.setenv("REPRO_TELEMETRY", word)
        assert get_bool("REPRO_TELEMETRY") is True

    def test_undeclared_knob_raises(self):
        with pytest.raises(KeyError, match="REPRO_BOGUS"):
            raw("REPRO_BOGUS")


class TestRegistryCompleteness:
    def test_every_source_mention_is_declared(self):
        """Grep the tree: any REPRO_* literal must be a declared knob."""
        mentioned = set()
        for path in SRC.rglob("*.py"):
            for name in re.findall(r"\bREPRO_[A-Z_]+\b", path.read_text("utf-8")):
                # doc wildcards like "REPRO_TRACE_*" leave a trailing _
                if not name.endswith("_"):
                    mentioned.add(name)
        undeclared = {m for m in mentioned if m not in KNOBS}
        assert not undeclared, f"undeclared REPRO_* knobs in source: {sorted(undeclared)}"

    def test_no_direct_environ_reads_of_knobs(self):
        """In-tree modules resolve knobs through envknobs, not os.environ.

        (Writes — exporting ambience to engine subprocesses — are fine;
        this guards reads: ``os.environ.get("REPRO_...`` and
        ``os.environ["REPRO_...]`` on the right-hand side.)
        """
        offenders = []
        for path in SRC.rglob("*.py"):
            if path.name == "envknobs.py":
                continue
            text = path.read_text("utf-8")
            if re.search(r"os\.environ\.get\(\s*[\"']REPRO_", text):
                offenders.append(str(path))
        assert not offenders, f"direct REPRO_* env reads: {offenders}"

    def test_table_renders_every_knob(self):
        table = render_knob_table()
        for env in KNOBS:
            assert env in table
        assert "precedence" in table

    def test_rows_match_table(self):
        rows = knob_rows()
        assert len(rows) == len(KNOBS)
        assert all(len(r) == 5 for r in rows)


class TestDeprecationShim:
    def test_environ_get_warns_but_works(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/x")
        with pytest.warns(DeprecationWarning, match="environ_get"):
            assert environ_get("REPRO_CACHE_DIR") == "/tmp/x"

    def test_environ_get_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        with pytest.warns(DeprecationWarning):
            assert environ_get("REPRO_CACHE_DIR", "fallback") == "fallback"


class TestKnobsCli:
    def test_repro_knobs_prints_the_table(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "knobs"],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0
        assert "REPRO_JOBS" in proc.stdout
        assert "precedence" in proc.stdout
