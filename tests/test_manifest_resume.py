"""Tests for study checkpoint/resume: manifest file + result round trip.

The resume contract: a study run with ``resume=True`` persists every
completed (case, RMS) point; a later run *skips exactly* those points —
reconstructing them from the manifest with zero simulations — and
measures only the remainder.  A corrupted manifest degrades to a fresh
start, never a crash.
"""

import json

import pytest

from repro.core.efficiency import EfficiencyRecord, NormalizedCurves
from repro.core.isoefficiency import IsoefficiencyConstants
from repro.core.procedure import ScalabilityResult
from repro.core.slope import SlopeAnalysis
from repro.core.tuner import TunedPoint
from repro.experiments.config import ScaleProfile
from repro.experiments.parallel import (
    StudyManifest,
    result_from_jsonable,
    result_to_jsonable,
)
from repro.experiments.reproduce import Study

#: a deliberately tiny profile so one full measurement runs in ~1 s
TINY = ScaleProfile(
    name="tiny-test",
    base_resources=9,
    base_schedulers=3,
    fixed_resources=9,
    fixed_schedulers=3,
    base_rate_per_resource=0.0004,
    horizon=1500.0,
    drain=2500.0,
    scales=(1, 2),
    sa_iterations=1,
)


def fake_result(name="LOWEST"):
    """A hand-built ScalabilityResult exercising every nested type."""
    points = [
        TunedPoint(
            scale=k,
            settings={"update_interval": 8.5 * k, "neighborhood_size": 3.0},
            record=EfficiencyRecord(F=200.0 * k, G=100.0 * k, H=10.0 * k),
            success_rate=0.97,
            objective=1.0 + k,
            feasible=(k < 3.0),
        )
        for k in (1.0, 2.0, 3.0)
    ]
    curves = NormalizedCurves(
        scales=(1.0, 2.0, 3.0), f=(1.0, 2.0, 3.0), g=(1.0, 2.0, 3.0), h=(1.0, 2.0, 3.0)
    )
    return ScalabilityResult(
        name=name,
        e0=0.4,
        points=points,
        curves=curves,
        slopes=SlopeAnalysis(
            scales=(1.0, 2.0, 3.0),
            g_slopes=(1.0, 1.0),
            f_slopes=(1.0, 1.0),
            scalable=(True, True),
            improving=(False,),
        ),
        constants=IsoefficiencyConstants(alpha=2.5, c=0.333, c_prime=0.0333),
        eq2_ok=[True, True, False],
        base_feasible=True,
    )


class TestResultRoundTrip:
    def test_lossless(self):
        result = fake_result()
        again = result_from_jsonable(result_to_jsonable(result))
        assert again == result

    def test_json_serializable(self):
        payload = result_to_jsonable(fake_result())
        assert json.loads(json.dumps(payload)) == payload


class TestStudyManifest:
    def test_mark_and_reload(self, tmp_path):
        path = tmp_path / "m.json"
        m = StudyManifest(path)
        assert not m.is_done("a")
        m.mark_done("a", {"x": 1})
        m.mark_done("b")
        reloaded = StudyManifest(path)
        assert reloaded.is_done("a") and reloaded.is_done("b")
        assert reloaded.payload("a") == {"x": 1}
        assert reloaded.completed_keys == ["a", "b"]
        assert len(reloaded) == 2

    def test_missing_file_is_empty(self, tmp_path):
        m = StudyManifest(tmp_path / "nope.json")
        assert len(m) == 0

    def test_corrupted_file_starts_fresh(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text("{{{ definitely not json")
        m = StudyManifest(path)
        assert len(m) == 0
        m.mark_done("a")  # and it can still persist afterwards
        assert StudyManifest(path).is_done("a")

    def test_wrong_version_starts_fresh(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps({"version": -9, "completed": {"a": None}}))
        assert len(StudyManifest(path)) == 0

    def test_parent_dirs_created(self, tmp_path):
        m = StudyManifest(tmp_path / "deep" / "er" / "m.json")
        m.mark_done("a")
        assert m.path.exists()


class TestStudyResume:
    def test_resume_skips_exactly_completed_points(self, tmp_path, monkeypatch):
        manifest = tmp_path / "study.json"

        first = Study(profile=TINY, rms=["LOWEST"], manifest_path=manifest)
        measured = first.run_case(1)["LOWEST"]
        assert StudyManifest(manifest).is_done(first._point_key(1, "LOWEST"))

        # Second study, same manifest: measuring anything is an error.
        second = Study(profile=TINY, rms=["LOWEST"], manifest_path=manifest)
        monkeypatch.setattr(
            Study,
            "_measure",
            lambda self, case, rms: pytest.fail("completed point was re-measured"),
        )
        resumed = second.run_case(1)["LOWEST"]
        assert resumed.result == measured.result
        assert resumed.metrics == measured.metrics
        assert resumed.G == measured.G

    def test_resume_measures_only_missing_points(self, tmp_path):
        manifest = tmp_path / "study.json"
        Study(profile=TINY, rms=["LOWEST"], manifest_path=manifest).run_case(1)

        measured = []
        real_measure = Study._measure

        def spying_measure(self, case, rms):
            measured.append(rms)
            return real_measure(self, case, rms)

        both = Study(profile=TINY, rms=["LOWEST", "CENTRAL"], manifest_path=manifest)
        try:
            Study._measure = spying_measure
            out = both.run_case(1)
        finally:
            Study._measure = real_measure
        assert measured == ["CENTRAL"]  # LOWEST came from the manifest
        assert set(out) == {"LOWEST", "CENTRAL"}
        # ... and now CENTRAL is checkpointed too
        assert StudyManifest(manifest).is_done(both._point_key(1, "CENTRAL"))

    def test_malformed_payload_falls_back_to_measurement(self, tmp_path):
        manifest_path = tmp_path / "study.json"
        study = Study(profile=TINY, rms=["LOWEST"], manifest_path=manifest_path)
        StudyManifest(manifest_path).mark_done(
            study._point_key(1, "LOWEST"), {"garbage": True}
        )
        study = Study(profile=TINY, rms=["LOWEST"], manifest_path=manifest_path)
        out = study.run_case(1)["LOWEST"]  # re-measured, not crashed
        assert out.G[0] > 0

    def test_point_key_distinguishes_studies(self):
        a = Study(profile=TINY, rms=["LOWEST"], seed=1)
        b = Study(profile=TINY, rms=["LOWEST"], seed=2)
        assert a._point_key(1, "LOWEST") != b._point_key(1, "LOWEST")
        assert a._point_key(1, "LOWEST") != a._point_key(2, "LOWEST")
        assert a._point_key(1, "LOWEST") != a._point_key(1, "CENTRAL")

    def test_no_resume_no_manifest_io(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        Study(profile=TINY, rms=["LOWEST"]).run_case(1)
        assert not (tmp_path / "manifests").exists()
