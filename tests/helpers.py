"""Shared builders for grid-layer tests: a hand-wired miniature grid.

Experiments use :mod:`repro.experiments.runner` to build full systems;
these helpers build *tiny*, fully inspectable ones (a couple of
schedulers, a handful of resources on a trivial topology) so protocol
tests can assert on individual messages and state transitions.
"""

from __future__ import annotations

import itertools

from repro.core import CostLedger
from repro.grid import CostModel, Estimator, Middleware, Resource, SchedulerBase, StatusTable
from repro.network import Network, Router
from repro.sim import RngHub, Simulator
from repro.topology import Topology
from repro.workload import JobClass, JobSpec
from repro.grid.jobs import Job

_ids = itertools.count()


def make_spec(
    arrival=0.0,
    execution=50.0,
    benefit=5.0,
    cluster=0,
    job_class=JobClass.LOCAL,
    job_id=None,
):
    """A JobSpec with friendly defaults for protocol tests."""
    return JobSpec(
        job_id=next(_ids) if job_id is None else job_id,
        arrival_time=arrival,
        execution_time=execution,
        requested_time=execution * 2,
        benefit_factor=benefit,
        submit_cluster=cluster,
        job_class=job_class,
    )


def make_job(**kw):
    """A runtime Job over :func:`make_spec`."""
    return Job(make_spec(**kw))


class MiniGrid:
    """A hand-wired grid: ``n_clusters`` schedulers, each with
    ``resources_per_cluster`` resources, all on a uniform star topology
    (every site one hop from a hub; latency 0.1, bandwidth 1000 — transit
    delays are small and identical, keeping assertions simple).

    Parameters
    ----------
    scheduler_cls:
        Scheduler class (SchedulerBase or an RMS subclass).
    n_clusters, resources_per_cluster:
        Grid shape.
    costs:
        Cost model (defaults to small, simple values for fast tests).
    service_rate:
        Resource service rate.
    seed:
        RNG seed for peer selection streams.
    central:
        If True, build ONE scheduler managing all resources (CENTRAL
        layout); n_clusters is then the number of resource groups only.
    use_middleware:
        Wire a shared Middleware entity (superscheduler protocols).
    """

    def __init__(
        self,
        scheduler_cls=SchedulerBase,
        n_clusters=2,
        resources_per_cluster=3,
        costs=None,
        service_rate=1.0,
        seed=0,
        central=False,
        use_middleware=False,
        scheduler_kwargs=None,
    ):
        self.sim = Simulator()
        self.ledger = CostLedger()
        self.costs = costs or CostModel(
            decision_base=0.1,
            scan_per_entry=0.01,
            update_proc=0.1,
            estimator_proc=0.05,
            poll_proc=0.1,
            advert_proc=0.1,
            auction_proc=0.1,
            completion_proc=0.05,
            transfer_proc=0.1,
            middleware_service=0.05,
            job_control=0.05,
            data_mgmt=0.02,
        )
        self.hub = RngHub(seed)

        n_sched = 1 if central else n_clusters
        n_res = n_clusters * resources_per_cluster
        # Star topology: node 0 is the hub; sites 1..(n_sched+n_res).
        n_nodes = 1 + n_sched + n_res + (1 if use_middleware else 0)
        topo = Topology(n_nodes)
        for v in range(1, n_nodes):
            topo.add_link(0, v, 0.1, 1000.0)
        self.topology = topo
        self.network = Network(self.sim, Router(topo))

        # Schedulers
        self.schedulers = []
        for s in range(n_sched):
            sched = scheduler_cls(
                self.sim,
                f"sched{s}",
                node=1 + s,
                scheduler_id=s,
                ledger=self.ledger,
                costs=self.costs,
                **(scheduler_kwargs or {}),
            )
            sched.network = self.network
            sched.rng = self.hub.stream(f"sched{s}")
            self.schedulers.append(sched)

        # Resources
        self.resources = []
        for r in range(n_res):
            cluster = r // resources_per_cluster
            owner = self.schedulers[0] if central else self.schedulers[cluster]
            res = Resource(
                self.sim,
                f"res{r}",
                node=1 + n_sched + r,
                resource_id=r,
                cluster_id=owner.scheduler_id,
                service_rate=service_rate,
                ledger=self.ledger,
                costs=self.costs,
            )
            res.network = self.network
            res.scheduler = owner
            self.resources.append(res)

        # Tables + resource maps
        for sched in self.schedulers:
            mine = [r for r in self.resources if r.cluster_id == sched.scheduler_id]
            sched.resources = {r.resource_id: r for r in mine}
            sched.table = StatusTable([r.resource_id for r in mine])

        # Peers: everyone else
        for sched in self.schedulers:
            sched.peers = [p for p in self.schedulers if p is not sched]

        # One estimator co-located with each scheduler; resources report
        # to their cluster's estimator.
        self.estimators = []
        for s, sched in enumerate(self.schedulers):
            est = Estimator(
                self.sim,
                f"est{s}",
                node=sched.node,
                estimator_id=s,
                ledger=self.ledger,
                costs=self.costs,
            )
            est.network = self.network
            est.schedulers = {sched.scheduler_id: sched}
            self.estimators.append(est)
        for res in self.resources:
            owner_idx = 0 if central else res.cluster_id
            res.estimator = self.estimators[owner_idx]

        # Optional middleware at the hub
        self.middleware = None
        if use_middleware:
            self.middleware = Middleware(
                self.sim, "mw", node=0, ledger=self.ledger, costs=self.costs
            )
            self.middleware.network = self.network
            for sched in self.schedulers:
                sched.middleware = self.middleware

    def submit(self, job, cluster=0, at=None):
        """Inject a job submission at its arrival time (or ``at``)."""
        from repro.network import Message, MessageKind

        when = job.spec.arrival_time if at is None else at
        sched = self.schedulers[min(cluster, len(self.schedulers) - 1)]
        delay = max(0.0, when - self.sim.now)
        self.sim.schedule(
            delay, sched.deliver, Message(MessageKind.JOB_SUBMIT, payload={"job": job})
        )
        return job
