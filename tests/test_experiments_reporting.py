"""Tests for result rendering: tables, ASCII plots, CSV output."""

import csv

import pytest

from repro.core.efficiency import EfficiencyRecord, normalize
from repro.core.isoefficiency import IsoefficiencyConstants, check_eq2
from repro.core.slope import analyze_slopes
from repro.core.tuner import TunedPoint
from repro.core.procedure import ScalabilityResult
from repro.experiments.reporting import ascii_plot, figure_report, format_table, write_csv
from repro.experiments.reproduce import FigureData, RMSSeries
from repro.experiments.runner import RunMetrics


def fake_metrics(F, G, H, succ=10, total=10):
    return RunMetrics(
        record=EfficiencyRecord(F=F, G=G, H=H),
        jobs_submitted=total,
        jobs_completed=total,
        jobs_successful=succ,
        mean_response=500.0,
        throughput=succ / 1000.0,
        messages_sent=100,
        scheduler_busy=G,
        horizon=1000.0,
    )


def fake_series(name, Gs=(100.0, 210.0, 330.0)):
    scales = tuple(range(1, len(Gs) + 1))
    records = [EfficiencyRecord(F=50.0 * k, G=g, H=5.0 * k) for k, g in zip(scales, Gs)]
    points = [
        TunedPoint(
            scale=k,
            settings={"update_interval": 10.0},
            record=r,
            success_rate=0.95,
            objective=1.0,
            feasible=True,
        )
        for k, r in zip(scales, records)
    ]
    curves = normalize(scales, records)
    constants = IsoefficiencyConstants.from_base(records[0])
    result = ScalabilityResult(
        name=name,
        e0=records[0].efficiency,
        points=points,
        curves=curves,
        slopes=analyze_slopes(curves),
        constants=constants,
        eq2_ok=check_eq2(constants, curves),
        base_feasible=True,
    )
    metrics = [fake_metrics(r.F, r.G, r.H) for r in records]
    return RMSSeries(rms=name, result=result, metrics=metrics)


def fake_figure():
    return FigureData(
        figure="Figure X",
        title="test figure",
        x_label="k",
        y_label="G",
        series={"ALPHA": fake_series("ALPHA"), "BETA": fake_series("BETA", (80, 400, 900))},
    )


class TestFormatTable:
    def test_alignment_and_header_rule(self):
        out = format_table(["a", "bb"], [[1, 2.34567], [10, 5.0]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert set(lines[1]) <= {"-", " "}
        widths = [len(x) for x in lines]
        assert len(set(widths)) == 1  # all rows align

    def test_float_precision(self):
        out = format_table(["x"], [[1.23456]], precision=3)
        assert "1.235" in out

    def test_bool_rendering(self):
        out = format_table(["ok"], [[True], [False]])
        assert "yes" in out and "no" in out


class TestAsciiPlot:
    def test_contains_all_series_letters(self):
        out = ascii_plot({"one": [1, 2, 3], "two": [3, 2, 1]}, [1, 2, 3])
        assert "A=one" in out and "B=two" in out
        assert "A" in out.splitlines()[0] or any("A" in l for l in out.splitlines())

    def test_empty(self):
        assert ascii_plot({}, []) == "(no data)"

    def test_log_scale_annotated(self):
        out = ascii_plot({"s": [1, 10, 100]}, [1, 2, 3], logy=True)
        assert "log10" in out

    def test_nan_values_skipped(self):
        out = ascii_plot({"s": [1.0, float("nan"), 3.0]}, [1, 2, 3])
        assert "y:" in out

    def test_constant_series_no_crash(self):
        out = ascii_plot({"s": [5.0, 5.0]}, [1, 2])
        assert "y:" in out


class TestFigureReport:
    def test_report_structure(self):
        out = figure_report(fake_figure(), "G")
        assert "Figure X" in out
        assert "ALPHA" in out and "BETA" in out
        assert "k=1" in out and "k=3" in out

    def test_quantities(self):
        fig = fake_figure()
        for q in ("G", "g_norm", "throughput", "response"):
            assert "ALPHA" in figure_report(fig, q)

    def test_rows(self):
        fig = fake_figure()
        rows = fig.rows("g_norm")
        assert rows[0][0] == "ALPHA"
        assert rows[0][1] == pytest.approx(1.0)


class TestWriteCsv:
    def test_roundtrip(self, tmp_path):
        fig = fake_figure()
        path = tmp_path / "fig.csv"
        write_csv(fig, str(path), "G")
        with open(path) as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["rms", "k=1", "k=2", "k=3"]
        assert rows[1][0] == "ALPHA"
        assert float(rows[1][1]) == 100.0


class TestSeriesAccessors:
    def test_series_properties(self):
        s = fake_series("X")
        assert s.scales == (1, 2, 3)
        assert s.G == (100.0, 210.0, 330.0)
        assert s.g_norm[0] == 1.0
        assert len(s.throughput) == 3
        assert len(s.response) == 3

    def test_figure_scales(self):
        assert fake_figure().scales == (1, 2, 3)
