"""Distributed-fabric tests: protocol, leases, failure, byte-identity.

Three layers, cheapest first:

* pure-unit — frame codec over a socketpair, the lease board's
  exactly-once rules, and the failure detector's incarnation algebra,
  all with fake clocks (no sleeping, no sockets beyond a pair);
* coordinator-unit — lease recovery through
  :meth:`Coordinator.check_silent` with an injected clock;
* localhost integration — a real coordinator with in-thread workers
  runs real studies, including one where a worker crashes mid-study,
  and the results are asserted **byte-identical** (cache entries,
  manifest fingerprint, rendered report) to the same StudySpec run
  locally with ``jobs=2``.
"""

import socket
import threading

import pytest

from repro import api
from repro.experiments.parallel.cache import RunCache
from repro.experiments.parallel.manifest import StudyManifest
from repro.experiments.spec import StudySpec
from repro.fabric import (
    Coordinator,
    FailureDetector,
    LeaseBoard,
    ProtocolError,
    Worker,
    recv_frame,
    send_frame,
)
from repro.fabric.client import status as fabric_status
from repro.fabric.client import submit as fabric_submit


class FakeClock:
    """A manually-advanced monotonic clock."""

    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


# ---------------------------------------------------------------------------
# protocol framing
# ---------------------------------------------------------------------------

class TestProtocol:
    def roundtrip(self, message):
        a, b = socket.socketpair()
        try:
            send_frame(a, message)
            return recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_roundtrip(self):
        msg = {"type": "lease", "lease_id": 7, "config": {"rms": "LOWEST"}}
        assert self.roundtrip(msg) == msg

    def test_unicode_safe(self):
        assert self.roundtrip({"type": "x", "s": "µ-héllo"})["s"] == "µ-héllo"

    def test_clean_eof_is_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_eof_mid_frame_raises(self):
        a, b = socket.socketpair()
        try:
            a.sendall(b"\x00\x00\x00\x10{\"type\"")  # promises 16, sends 8
            a.close()
            with pytest.raises(ProtocolError, match="mid-frame"):
                recv_frame(b)
        finally:
            b.close()

    def test_oversized_length_raises(self, monkeypatch):
        from repro.fabric import protocol

        monkeypatch.setattr(protocol, "MAX_FRAME", 16)
        a, b = socket.socketpair()
        try:
            a.sendall(b"\x00\x00\x01\x00")
            with pytest.raises(ProtocolError, match="MAX_FRAME"):
                protocol.recv_frame(b)
            with pytest.raises(ProtocolError, match="MAX_FRAME"):
                protocol.send_frame(a, {"type": "x", "pad": "y" * 64})
        finally:
            a.close()
            b.close()

    def test_non_object_frame_rejected(self):
        a, b = socket.socketpair()
        try:
            body = b"[1,2,3]"
            a.sendall(len(body).to_bytes(4, "big") + body)
            with pytest.raises(ProtocolError, match="'type'"):
                recv_frame(b)
        finally:
            a.close()
            b.close()


# ---------------------------------------------------------------------------
# lease board: exactly-once
# ---------------------------------------------------------------------------

class TestLeaseBoard:
    def test_submit_dedups(self):
        board = LeaseBoard()
        assert board.submit("k1", {"c": 1})
        assert not board.submit("k1", {"c": 1})
        assert board.pending_count == 1

    def test_fifo_grant_order(self):
        board = LeaseBoard()
        for key in ("k1", "k2", "k3"):
            board.submit(key, {})
        granted = [board.next_for("w", 1).key for _ in range(3)]
        assert granted == ["k1", "k2", "k3"]
        assert board.next_for("w", 1) is None

    def test_complete_is_exactly_once(self):
        board = LeaseBoard()
        board.submit("k1", {})
        lease = board.next_for("w", 1)
        assert board.complete(lease.lease_id, "w", 1, {"m": 1})
        assert not board.complete(lease.lease_id, "w", 1, {"m": 1})
        assert board.completed == 1
        assert board.duplicates == 1
        assert board.take_result("k1") == {"m": 1}

    def test_stale_incarnation_rejected(self):
        board = LeaseBoard()
        board.submit("k1", {})
        lease = board.next_for("w", 1)
        assert not board.complete(lease.lease_id, "w", 2, {"m": 1})
        assert not board.complete(lease.lease_id, "other", 1, {"m": 1})
        assert board.duplicates == 2
        assert not board.is_done("k1")

    def test_requeued_lease_drops_the_ghost_result(self):
        """The canonical crash interleaving: grant, declare the worker
        dead (requeue), re-grant elsewhere — the dead worker's late
        result must not land."""
        board = LeaseBoard()
        board.submit("k1", {"c": 1})
        old = board.next_for("w1", 1)
        assert board.fail_worker("w1") == ["k1"]
        fresh = board.next_for("w2", 1)
        assert fresh.key == "k1" and fresh.lease_id != old.lease_id
        assert not board.complete(old.lease_id, "w1", 1, {"m": "ghost"})
        assert board.complete(fresh.lease_id, "w2", 1, {"m": "real"})
        assert board.take_result("k1") == {"m": "real"}
        assert board.requeues == 1

    def test_fail_worker_requeues_to_the_front(self):
        board = LeaseBoard()
        board.submit("k1", {})
        board.next_for("w1", 1)
        board.submit("k2", {})
        board.fail_worker("w1")
        assert board.next_for("w2", 1).key == "k1"  # recovery first

    def test_abort_is_terminal(self):
        board = LeaseBoard()
        board.submit("k1", {})
        lease = board.next_for("w1", 1)
        assert board.abort(lease.lease_id, {"error": "gave up"}) == "k1"
        assert board.is_done("k1")
        assert board.pending_count == 0
        assert board.abort(lease.lease_id, {}) is None


# ---------------------------------------------------------------------------
# failure detector: incarnations and silence
# ---------------------------------------------------------------------------

class TestFailureDetector:
    def test_register_and_silence(self):
        clock = FakeClock()
        det = FailureDetector(timeout=5.0, clock=clock)
        assert det.register("w1", 1)
        assert det.is_alive("w1")
        clock.advance(4.9)
        assert det.silent() == []
        clock.advance(0.2)
        assert det.silent() == ["w1"]
        assert not det.is_alive("w1")

    def test_heartbeat_resets_the_timer(self):
        clock = FakeClock()
        det = FailureDetector(timeout=5.0, clock=clock)
        det.register("w1", 1)
        clock.advance(4.0)
        assert det.beat("w1", 1)
        clock.advance(4.0)
        assert det.silent() == []

    def test_stale_incarnation_cannot_register_or_beat(self):
        det = FailureDetector(timeout=5.0, clock=FakeClock())
        assert det.register("w1", 2)
        assert not det.register("w1", 2)  # duplicate life
        assert not det.register("w1", 1)  # older life
        assert det.register("w1", 3)      # a restart supersedes
        assert not det.beat("w1", 2)      # ghost heartbeat from life 2
        assert det.beat("w1", 3)
        assert det.incarnation("w1") == 3

    def test_unknown_worker_heartbeat_ignored(self):
        det = FailureDetector(timeout=5.0, clock=FakeClock())
        assert not det.beat("nobody", 1)

    def test_timeout_must_be_positive(self):
        with pytest.raises(ValueError):
            FailureDetector(timeout=0.0)


# ---------------------------------------------------------------------------
# coordinator lease recovery (fake clock, no sockets)
# ---------------------------------------------------------------------------

class TestCoordinatorRecovery:
    def test_check_silent_requeues_the_dead_workers_leases(self):
        clock = FakeClock()
        coord = Coordinator(heartbeat_timeout=5.0, clock=clock)
        with coord._cond:
            coord.detector.register("w1", 1)
            coord.detector.register("w2", 1)
            coord.board.submit("k1", {"c": 1})
            coord.board.submit("k2", {"c": 2})
            coord.board.next_for("w1", 1)
            coord.board.next_for("w2", 1)
        clock.advance(3.0)
        with coord._cond:
            coord.detector.beat("w2", 1)  # only w2 stays chatty
        clock.advance(3.0)
        assert coord.check_silent() == ["w1"]
        assert coord.board.pending_count == 1  # k1 requeued
        assert coord.board.active_count == 1   # k2 untouched
        assert coord.detector.incarnation("w1") is None
        assert coord.check_silent() == []      # idempotent

    def test_execute_raises_when_stopped_mid_batch(self):
        coord = Coordinator(heartbeat_timeout=5.0, clock=FakeClock())
        coord._stopped.set()
        with pytest.raises(RuntimeError, match="stopped"):
            coord.execute(["k1"], [{"c": 1}])


# ---------------------------------------------------------------------------
# localhost integration: byte identity, with and without a crash
# ---------------------------------------------------------------------------

RMS_SUBSET = ("LOWEST", "CENTRAL", "S-I", "R-I")


def _spawn_worker(address, **kwargs):
    """A worker on a thread; crashes inside it must not kill the test."""
    worker = Worker(address, heartbeat_interval=0.1, **kwargs)

    def run():
        try:
            worker.run()
        except Exception:  # noqa: BLE001 - simulated crashes end up here
            pass

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return worker, thread


@pytest.mark.slow
class TestFabricIntegration:
    def local_reference(self, spec, tmp_path):
        """The same spec run locally with jobs=2, in its own cache."""
        local_dir = tmp_path / "local-cache"
        return api.run_study(spec.replace(cache_dir=str(local_dir))), local_dir

    def assert_cache_bytes_equal(self, dir_a, dir_b):
        entries_a = RunCache(str(dir_a)).entry_bytes()
        entries_b = RunCache(str(dir_b)).entry_bytes()
        assert entries_a, "reference cache is empty — the study cached nothing"
        assert entries_a == entries_b

    def test_submitted_study_is_byte_identical_to_local(self, tmp_path):
        spec = StudySpec(
            kind="compare", profile="ci", rms=RMS_SUBSET,
            cache_dir=str(tmp_path / "fabric-cache"), jobs=2,
        )
        local_result, local_dir = self.local_reference(spec, tmp_path)
        with Coordinator(port=0, heartbeat_timeout=10.0) as coord:
            workers = [_spawn_worker(coord.address, worker_id=f"w{i}")
                       for i in range(2)]
            result = fabric_submit(spec, coord.address, timeout=120.0)
            snapshot = fabric_status(coord.address)
            for worker, _ in workers:
                worker.stop()
        assert result.report == local_result.report
        self.assert_cache_bytes_equal(local_dir, tmp_path / "fabric-cache")
        assert snapshot["jobs_done"] == 1
        assert snapshot["completed"] == len(RMS_SUBSET)
        assert snapshot["duplicates"] == 0
        # both workers pulled leases — the batch really fanned out
        executed = [w.leases_executed for w, _ in workers]
        assert sum(executed) == len(RMS_SUBSET)
        assert all(n >= 1 for n in executed)

    def test_worker_killed_mid_study_still_completes_identically(self, tmp_path):
        """Satellite-4 contract: SIGKILL-equivalent loss of a worker
        mid-study must not change a byte of the cache or the manifest."""
        spec = StudySpec(
            kind="faults", profile="ci", rms=RMS_SUBSET,
            cache_dir=str(tmp_path / "fabric-cache"), jobs=2,
        )
        local_result, local_dir = self.local_reference(spec, tmp_path)

        def crash_after_first_lease(worker):
            raise RuntimeError("simulated crash (socket drops mid-study)")

        with Coordinator(port=0, heartbeat_timeout=10.0) as coord:
            doomed, _ = _spawn_worker(
                coord.address, worker_id="doomed",
                on_lease=crash_after_first_lease, reconnect_attempts=0,
            )
            survivor, _ = _spawn_worker(coord.address, worker_id="survivor")
            result = fabric_submit(spec, coord.address, timeout=300.0)
            snapshot = fabric_status(coord.address)
            survivor.stop()
        assert result.report == local_result.report
        assert result.manifest_path is not None
        self.assert_cache_bytes_equal(local_dir, tmp_path / "fabric-cache")
        fabric_manifest = StudyManifest(result.manifest_path)
        fabric_manifest.load()
        local_manifest = StudyManifest(local_result.manifest_path)
        local_manifest.load()
        assert len(fabric_manifest) > 0
        assert fabric_manifest.fingerprint() == local_manifest.fingerprint()
        # the doomed worker really died after one lease, and its loss
        # rescheduled work (the lease granted while it was crashing)
        assert doomed.leases_executed == 1
        assert snapshot["requeues"] >= 1
        assert snapshot["duplicates"] == 0
        assert snapshot["completed"] == len(RMS_SUBSET) * 3  # 3 ci scales

    def test_submit_error_reaches_the_client(self):
        with Coordinator(port=0, heartbeat_timeout=10.0) as coord:
            # version-valid frame but an invalid spec payload
            sock = socket.create_connection(coord.address, timeout=10.0)
            try:
                from repro.fabric.protocol import PROTOCOL_VERSION

                send_frame(sock, {"type": "submit", "v": PROTOCOL_VERSION,
                                  "spec": {"kind": "nonsense"}})
                assert recv_frame(sock)["type"] == "accepted"
                reply = recv_frame(sock)
            finally:
                sock.close()
        assert reply["type"] == "error"
        assert "nonsense" in reply["message"]

    def test_stale_worker_registration_rejected(self):
        with Coordinator(port=0, heartbeat_timeout=10.0) as coord:
            from repro.fabric.protocol import PROTOCOL_VERSION

            def register(incarnation):
                sock = socket.create_connection(coord.address, timeout=10.0)
                send_frame(sock, {"type": "register", "worker_id": "w",
                                  "incarnation": incarnation,
                                  "v": PROTOCOL_VERSION})
                return sock, recv_frame(sock)

            s1, hello1 = register(2)
            try:
                s2, hello2 = register(1)
                s2.close()
            finally:
                s1.close()
        assert hello1["type"] == "registered"
        assert hello2["type"] == "rejected"
        assert "stale" in hello2["message"]
