"""Tests for the Resource entity: service, accounting, reporting."""

import pytest

from repro.core import Category
from repro.grid import JobState
from repro.network import MessageKind

from helpers import MiniGrid, make_job


def single_resource_grid(**kw):
    g = MiniGrid(n_clusters=1, resources_per_cluster=1, **kw)
    return g, g.resources[0]


class TestService:
    def test_job_runs_for_demand_over_rate(self):
        g, res = single_resource_grid(service_rate=2.0)
        job = make_job(execution=50.0)
        job.mark_placed(0)
        res.accept_job(job)
        g.sim.run()
        assert job.state == JobState.COMPLETED
        assert job.completion_time == pytest.approx(25.0)

    def test_fifo_order(self):
        g, res = single_resource_grid()
        jobs = [make_job(execution=10.0) for _ in range(3)]
        for j in jobs:
            j.mark_placed(0)
            res.accept_job(j)
        g.sim.run()
        times = [j.completion_time for j in jobs]
        assert times == sorted(times)
        assert times == pytest.approx([10.0, 20.0, 30.0])

    def test_load_counts_queue_plus_running(self):
        g, res = single_resource_grid()
        assert res.load == 0 and res.idle
        for _ in range(3):
            j = make_job(execution=100.0)
            j.mark_placed(0)
            res.accept_job(j)
        assert res.load == 3
        assert not res.idle

    def test_successful_job_credits_F(self):
        g, res = single_resource_grid()
        job = make_job(execution=50.0, benefit=5.0)  # bound 250, easily met
        job.mark_placed(0)
        res.accept_job(job)
        g.sim.run()
        assert job.successful
        assert g.ledger.total(Category.USEFUL) == pytest.approx(50.0)

    def test_failed_job_does_not_credit_F(self):
        g, res = single_resource_grid()
        # arrival long ago -> response time huge -> miss benefit bound
        job = make_job(arrival=0.0, execution=50.0, benefit=2.0)
        job.mark_placed(0)
        g.sim.run(until=500.0)
        res.accept_job(job)
        g.sim.run()
        assert job.successful is False
        assert g.ledger.total(Category.USEFUL) == 0.0

    def test_job_control_charged_to_H(self):
        g, res = single_resource_grid()
        job = make_job()
        job.mark_placed(0)
        res.accept_job(job)
        assert g.ledger.total(Category.JOB_CONTROL) == pytest.approx(g.costs.job_control)

    def test_transferred_job_charges_data_mgmt(self):
        g, res = single_resource_grid()
        job = make_job(cluster=1)  # submitted at cluster 1, placed at 0
        job.mark_placed(0)
        assert job.transfers == 1
        res.accept_job(job)
        assert g.ledger.total(Category.DATA_MGMT) == pytest.approx(g.costs.data_mgmt)

    def test_completion_notifies_scheduler(self):
        g, res = single_resource_grid()
        seen = []
        res.scheduler.after_completion = lambda job: seen.append(job)
        job = make_job(execution=5.0)
        job.mark_placed(0)
        res.accept_job(job)
        g.sim.run()
        assert seen == [job]

    def test_dispatch_message_accepted(self):
        g, res = single_resource_grid()
        from repro.network import Message

        job = make_job()
        job.mark_placed(0)
        res.deliver(Message(MessageKind.JOB_DISPATCH, payload={"job": job}))
        g.sim.run()
        assert job.state == JobState.COMPLETED

    def test_non_dispatch_message_rejected(self):
        g, res = single_resource_grid()
        from repro.network import Message

        with pytest.raises(ValueError):
            res.deliver(Message(MessageKind.POLL_REQUEST))

    def test_bad_service_rate_rejected(self):
        g, res = single_resource_grid()
        from repro.grid import Resource

        with pytest.raises(ValueError):
            Resource(
                g.sim, "bad", 0, 99, 0, service_rate=0.0, ledger=g.ledger, costs=g.costs
            )

    def test_utilization_statistic(self):
        g, res = single_resource_grid()
        job = make_job(execution=50.0)
        job.mark_placed(0)
        res.accept_job(job)
        g.sim.run(until=100.0)
        assert res.util_stat.mean(100.0) == pytest.approx(0.5)


class TestFailureInjection:
    def test_offline_defers_queued_jobs(self):
        g, res = single_resource_grid()
        res.set_offline()
        job = make_job(execution=10.0)
        job.mark_placed(0)
        res.accept_job(job)
        g.sim.run(until=100.0)
        assert job.state == JobState.PLACED  # never started
        res.set_online()
        g.sim.run()
        assert job.state == JobState.COMPLETED
        assert job.completion_time == pytest.approx(110.0)

    def test_running_job_finishes_despite_offline(self):
        g, res = single_resource_grid()
        job = make_job(execution=10.0)
        job.mark_placed(0)
        res.accept_job(job)
        g.sim.run(until=1.0)
        res.set_offline()
        g.sim.run()
        assert job.state == JobState.COMPLETED


class TestStatusReporting:
    def test_reports_sent_when_load_changes(self):
        g, res = single_resource_grid()
        res.start_reporting(interval=10.0)
        job = make_job(execution=35.0)
        job.mark_placed(0)
        g.sim.schedule(5.0, res.accept_job, job)
        g.sim.run(until=60.0)
        # First tick (t=0, load 0) reports the baseline; load becomes 1
        # at t=5, reported at t=10; back to 0 at t=40, reported at t=50.
        assert res._last_reported_load == 0
        assert res.estimator.served >= 3

    def test_suppression_skips_unchanged_load(self):
        g, res = single_resource_grid()
        res.start_reporting(interval=10.0, max_silence=None)
        g.sim.run(until=200.0)
        # Load never changes after the initial report and keepalives are
        # off: exactly one update.
        assert res.estimator.served == 1

    def test_keepalive_bounds_suppression(self):
        g, res = single_resource_grid()
        res.start_reporting(interval=10.0, max_silence=3)
        g.sim.run(until=200.0)
        # Initial report at t=0, then a keepalive every 3 suppressed
        # ticks (every 40 time units): t=40, 80, 120, 160, 200 -> ~6.
        assert 5 <= res.estimator.served <= 7

    def test_keepalive_counter_resets_on_change(self):
        g, res = single_resource_grid()
        res.start_reporting(interval=10.0, max_silence=3)
        job = make_job(execution=500.0)  # stays running for the test
        job.mark_placed(0)
        g.sim.schedule(25.0, res.accept_job, job)
        g.sim.run(until=55.0)
        # t=0 initial (load 0), t=30 change-driven (load 1); the silence
        # counter restarts, so no keepalive before t=60.
        assert res.estimator.served == 2

    def test_bad_max_silence_rejected(self):
        g, res = single_resource_grid()
        with pytest.raises(ValueError):
            res.start_reporting(interval=10.0, max_silence=0)

    def test_stop_reporting(self):
        g, res = single_resource_grid()
        res.start_reporting(interval=10.0)
        g.sim.run(until=15.0)
        res.stop_reporting()
        served_before = res.estimator.served
        job = make_job(execution=5.0)
        job.mark_placed(0)
        res.accept_job(job)
        g.sim.run(until=100.0)
        assert res.estimator.served == served_before

    def test_bad_interval_rejected(self):
        g, res = single_resource_grid()
        with pytest.raises(ValueError):
            res.start_reporting(interval=0.0)

    def test_phase_staggers_first_report(self):
        g, res = single_resource_grid()
        res.start_reporting(interval=10.0, phase=3.0)
        g.sim.run(until=2.9)
        assert res.estimator.served == 0
        g.sim.run(until=4.0)
        # in flight or served shortly after t=3
        g.sim.run(until=10.0)
        assert res.estimator.served == 1
