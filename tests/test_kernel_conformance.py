"""Cross-backend conformance suite for the simulation kernel contract.

Every test in this file is parametrized over every registered kernel
backend (``repro.sim.backend.backend_names()``), so a new backend is
conformance-tested simply by registering it — no test edits required.

The contract under test (see :mod:`repro.sim.backend`):

* events fire in ``(time, seq)`` order — seq is scheduling order, so
  same-timestamp events fire FIFO;
* cancellation is lazy and idempotent: a cancelled event never fires,
  cancelling a fired or already-cancelled event is a no-op, and a stale
  handle can never kill a later event that reuses its storage;
* ``run(until)`` is inclusive, always leaves the clock exactly at
  ``until`` (even with ``max_events=0``), never runs the clock
  backwards, and raises :class:`SimulationError` on a horizon before
  ``now``;
* ``pop_until`` / ``peek_time`` expose the event stream without
  touching the clock, the trace hook, or ``events_executed``;
* the trace hook observes exactly the events that execute, in order.
"""

from __future__ import annotations

import math

import pytest

from repro.sim.backend import backend_names, create_kernel
from repro.sim.kernel import SimulationError

pytestmark = pytest.mark.parametrize("backend", backend_names())


def make(backend, start_time=0.0):
    return create_kernel(backend, start_time=start_time)


# ----------------------------------------------------------------------
# ordering
# ----------------------------------------------------------------------


class TestOrdering:
    def test_time_order(self, backend):
        sim = make(backend)
        log = []
        for t in (3.0, 1.0, 2.0, 0.5):
            sim.schedule(t, log.append, t)
        sim.run()
        assert log == [0.5, 1.0, 2.0, 3.0]

    def test_same_timestamp_fifo(self, backend):
        # Ten same-time events must fire in scheduling order: ties are
        # broken by seq, which is assigned at schedule() time.
        sim = make(backend)
        log = []
        for i in range(10):
            sim.schedule(1.0, log.append, i)
        sim.run()
        assert log == list(range(10))

    def test_interleaved_times_and_ties(self, backend):
        sim = make(backend)
        log = []
        plan = [(2.0, "a"), (1.0, "b"), (2.0, "c"), (1.0, "d"), (0.0, "e")]
        for t, tag in plan:
            sim.schedule(t, log.append, tag)
        sim.run()
        assert log == ["e", "b", "d", "a", "c"]

    def test_zero_delay_fires_at_now(self, backend):
        sim = make(backend, start_time=4.0)
        seen = []
        sim.schedule(0.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [4.0]

    def test_schedule_at_absolute(self, backend):
        sim = make(backend, start_time=10.0)
        log = []
        sim.schedule_at(12.0, log.append, "later")
        sim.schedule_at(10.0, log.append, "now")
        sim.run()
        assert log == ["now", "later"]
        assert sim.now == 12.0


# ----------------------------------------------------------------------
# argument validation
# ----------------------------------------------------------------------


class TestValidation:
    def test_negative_delay_rejected(self, backend):
        sim = make(backend)
        with pytest.raises(SimulationError):
            sim.schedule(-1e-9, lambda: None)

    def test_nan_delay_rejected(self, backend):
        sim = make(backend)
        with pytest.raises(SimulationError):
            sim.schedule(math.nan, lambda: None)

    def test_schedule_at_past_rejected(self, backend):
        sim = make(backend, start_time=5.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(4.9, lambda: None)

    def test_run_horizon_before_now_raises(self, backend):
        sim = make(backend)
        sim.schedule(3.0, lambda: None)
        sim.run(until=3.0)
        with pytest.raises(SimulationError):
            sim.run(until=2.0)


# ----------------------------------------------------------------------
# cancellation
# ----------------------------------------------------------------------


class TestCancel:
    def test_cancelled_event_never_fires(self, backend):
        sim = make(backend)
        log = []
        keep = sim.schedule(1.0, log.append, "keep")
        kill = sim.schedule(2.0, log.append, "kill")
        sim.cancel(kill)
        sim.run()
        assert log == ["keep"]
        assert sim.events_executed == 1

    def test_cancel_is_idempotent(self, backend):
        sim = make(backend)
        h = sim.schedule(1.0, lambda: None)
        sim.cancel(h)
        sim.cancel(h)  # second cancel: no-op, no error
        sim.run()
        assert sim.events_executed == 0

    def test_cancel_after_fire_is_noop(self, backend):
        sim = make(backend)
        log = []
        h = sim.schedule(1.0, log.append, "x")
        sim.run()
        sim.cancel(h)  # already fired: must not disturb anything
        sim.schedule(1.0, log.append, "y")
        sim.run()
        assert log == ["x", "y"]

    def test_cancel_from_within_handler(self, backend):
        # A handler cancelling a later event must take effect even
        # though the victim may already sit in internal structures.
        sim = make(backend)
        log = []
        victim = sim.schedule(2.0, log.append, "victim")
        sim.schedule(1.0, lambda: sim.cancel(victim))
        sim.schedule(3.0, log.append, "after")
        sim.run()
        assert log == ["after"]

    def test_stale_handle_cannot_kill_reused_slot(self, backend):
        # Fire an event, keep its handle, schedule many more events
        # (forcing any slot/storage reuse), then cancel via the stale
        # handle: every live event must still fire.
        sim = make(backend)
        log = []
        stale = sim.schedule(1.0, log.append, "first")
        sim.run()
        handles = [sim.schedule(2.0 + i, log.append, i) for i in range(20)]
        sim.cancel(stale)
        sim.run()
        assert log == ["first"] + list(range(20))

    def test_mass_cancel_triggers_compaction(self, backend):
        # Cancel far more than half of a large pending set: the backend
        # may compact internally, but survivors and order are untouched.
        sim = make(backend)
        log = []
        handles = [sim.schedule(float(i), log.append, i) for i in range(300)]
        for i, h in enumerate(handles):
            if i % 3:
                sim.cancel(h)
        sim.run()
        assert log == [i for i in range(300) if not i % 3]
        assert sim.pending == 0


# ----------------------------------------------------------------------
# run() clock semantics
# ----------------------------------------------------------------------


class TestRunClock:
    def test_until_is_inclusive(self, backend):
        sim = make(backend)
        log = []
        sim.schedule(2.0, log.append, "at-horizon")
        sim.schedule(2.5, log.append, "beyond")
        sim.run(until=2.0)
        assert log == ["at-horizon"]
        assert sim.now == 2.0
        assert sim.pending == 1

    def test_clock_lands_on_until_with_no_events(self, backend):
        sim = make(backend)
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_max_events_zero_still_advances_clock(self, backend):
        sim = make(backend)
        sim.schedule(5.0, lambda: None)
        sim.run(until=3.0, max_events=0)
        assert sim.now == 3.0
        assert sim.events_executed == 0
        assert sim.pending == 1

    def test_max_events_budget(self, backend):
        sim = make(backend)
        log = []
        for i in range(5):
            sim.schedule(float(i + 1), log.append, i)
        sim.run(max_events=2)
        assert log == [0, 1]
        assert sim.now == 2.0
        sim.run()
        assert log == [0, 1, 2, 3, 4]

    def test_resume_after_horizon(self, backend):
        sim = make(backend)
        log = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, log.append, t)
        sim.run(until=1.5)
        assert log == [1.0]
        assert sim.now == 1.5
        sim.run(until=3.0)
        assert log == [1.0, 2.0, 3.0]
        assert sim.now == 3.0

    def test_drain_leaves_clock_at_last_event(self, backend):
        sim = make(backend)
        sim.schedule(4.25, lambda: None)
        sim.run()
        assert sim.now == 4.25
        assert sim.pending == 0

    def test_step_returns_whether_event_fired(self, backend):
        sim = make(backend)
        log = []
        sim.schedule(1.0, log.append, "x")
        assert sim.step() is True
        assert log == ["x"]
        assert sim.now == 1.0
        assert sim.step() is False
        assert sim.now == 1.0


# ----------------------------------------------------------------------
# pop_until / peek_time — inspection without execution
# ----------------------------------------------------------------------


class TestPopPeek:
    def test_peek_time(self, backend):
        sim = make(backend)
        assert sim.peek_time() is None
        sim.schedule(3.0, lambda: None)
        h = sim.schedule(1.0, lambda: None)
        assert sim.peek_time() == 1.0
        sim.cancel(h)
        # peek discards the dead head and reports the next live event
        assert sim.peek_time() == 3.0

    def test_pop_until_returns_payload(self, backend):
        sim = make(backend)
        fn = lambda tag: tag  # noqa: E731
        sim.schedule(1.0, fn, "a")
        popped = sim.pop_until()
        assert popped is not None
        t, popped_fn, args = popped
        assert t == 1.0
        assert popped_fn is fn
        assert args == ("a",)

    def test_pop_until_respects_limit(self, backend):
        sim = make(backend)
        sim.schedule(1.0, lambda: None)
        sim.schedule(5.0, lambda: None)
        assert sim.pop_until(limit=2.0) is not None
        assert sim.pop_until(limit=2.0) is None  # next event is beyond
        assert sim.pending == 1

    def test_pop_until_has_no_side_effects(self, backend):
        # Popping must not advance the clock, fire the trace hook, or
        # count as execution — it only removes the event.
        sim = make(backend)
        traced = []
        sim.trace = lambda t, fn, args: traced.append(t)
        sim.schedule(2.0, lambda: None)
        sim.pop_until()
        assert sim.now == 0.0
        assert sim.events_executed == 0
        assert traced == []
        assert sim.pending == 0

    def test_pop_until_skips_cancelled(self, backend):
        sim = make(backend)
        dead = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.cancel(dead)
        popped = sim.pop_until()
        assert popped is not None and popped[0] == 2.0

    def test_pop_until_batching_drains_in_order(self, backend):
        sim = make(backend)
        for t in (3.0, 1.0, 2.0):
            sim.schedule(t, lambda: None)
        times = []
        while True:
            popped = sim.pop_until(limit=10.0)
            if popped is None:
                break
            times.append(popped[0])
        assert times == [1.0, 2.0, 3.0]


# ----------------------------------------------------------------------
# reentrancy — scheduling and cancelling from inside handlers
# ----------------------------------------------------------------------


class TestReentrancy:
    def test_reschedule_from_inside_handler(self, backend):
        # The classic self-perpetuating "ping": each firing schedules
        # the next.  Exercises the schedule-while-running hot path.
        sim = make(backend)
        log = []

        def ping(i):
            log.append((sim.now, i))
            if i < 5:
                sim.schedule(1.0, ping, i + 1)

        sim.schedule(1.0, ping, 0)
        sim.run()
        assert log == [(float(i + 1), i) for i in range(6)]
        assert sim.events_executed == 6

    def test_handler_schedules_same_timestamp(self, backend):
        # An event scheduled at delay 0 from inside a handler fires in
        # the same run, after already-scheduled same-time events.
        sim = make(backend)
        log = []
        sim.schedule(1.0, lambda: (log.append("a"), sim.schedule(0.0, log.append, "c")))
        sim.schedule(1.0, log.append, "b")
        sim.run()
        assert log == ["a", "b", "c"]

    def test_nested_run_is_rejected_or_consistent(self, backend):
        # The contract does not require nested run() support, but a
        # handler draining the queue via run() must not corrupt state:
        # afterwards every event has fired exactly once.
        sim = make(backend)
        log = []
        sim.schedule(2.0, log.append, "late")

        def nested():
            log.append("outer")
            try:
                sim.run()
            except SimulationError:
                pass

        sim.schedule(1.0, nested)
        sim.run()
        assert sorted(log) == ["late", "outer"]
        assert sim.pending == 0

    def test_cancel_storm_from_handler(self, backend):
        # A handler cancelling a large batch (possibly triggering
        # compaction mid-run) must not derail delivery of survivors.
        sim = make(backend)
        log = []
        victims = [sim.schedule(5.0 + i * 0.1, log.append, i) for i in range(200)]
        survivors = [sim.schedule(40.0 + i, log.append, 1000 + i) for i in range(5)]

        def massacre():
            for h in victims:
                sim.cancel(h)

        sim.schedule(1.0, massacre)
        sim.run()
        assert log == [1000 + i for i in range(5)]
        assert sim.pending == 0


# ----------------------------------------------------------------------
# accounting: events_executed, pending, trace
# ----------------------------------------------------------------------


class TestAccounting:
    def test_events_executed_excludes_cancelled(self, backend):
        sim = make(backend)
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(6)]
        for h in handles[::2]:
            sim.cancel(h)
        sim.run()
        assert sim.events_executed == 3

    def test_pending_tracks_live_events(self, backend):
        sim = make(backend)
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(4)]
        assert sim.pending == 4
        sim.cancel(handles[0])
        assert sim.pending == 3
        sim.run(max_events=1)
        assert sim.pending == 2
        sim.run()
        assert sim.pending == 0

    def test_trace_sees_each_executed_event(self, backend):
        sim = make(backend)
        traced = []
        sim.trace = lambda t, fn, args: traced.append((t, args))
        dead = sim.schedule(1.5, lambda tag: None, "dead")
        sim.schedule(1.0, lambda tag: None, "a")
        sim.schedule(2.0, lambda tag: None, "b")
        sim.cancel(dead)
        sim.run()
        assert traced == [(1.0, ("a",)), (2.0, ("b",))]

    def test_trace_installed_mid_run(self, backend):
        sim = make(backend)
        traced = []
        sim.schedule(1.0, lambda: setattr(sim, "trace", lambda t, fn, args: traced.append(t)))
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert traced == [2.0]

    def test_start_time_respected(self, backend):
        sim = make(backend, start_time=100.0)
        assert sim.now == 100.0
        log = []
        sim.schedule(2.5, lambda: log.append(sim.now))
        sim.run()
        assert log == [102.5]
