"""Tests for Entity / MessageServer queueing semantics."""

import pytest

from repro.sim import Entity, MessageServer, Simulator


class RecordingLedger:
    """Minimal ChargeSink capturing (category, amount) pairs."""

    def __init__(self):
        self.charges = []
        self.sources = []

    def charge(self, category, amount, source=None):
        self.charges.append((category, amount))
        self.sources.append(source)

    def total(self, category=None):
        return sum(a for c, a in self.charges if category is None or c == category)


class EchoServer(MessageServer):
    """Fixed-service-time server that records completion times."""

    def __init__(self, sim, st=2.0, ledger=None):
        super().__init__(sim, "echo", node=0, ledger=ledger)
        self._st = st
        self.handled = []

    def service_time(self, message):
        return self._st

    def cost_category(self, message):
        return "proc"

    def handle(self, message):
        self.handled.append((self.sim.now, message))


class TestEntityBase:
    def test_plain_entity_dispatches_immediately(self):
        sim = Simulator()

        class Sink(Entity):
            def __init__(self, sim):
                super().__init__(sim, "sink", node=3)
                self.got = []

            def handle(self, message):
                self.got.append(message)

        s = Sink(sim)
        s.deliver("hello")
        assert s.got == ["hello"]
        assert s.node == 3

    def test_handle_is_abstract(self):
        sim = Simulator()
        e = Entity(sim, "e")
        with pytest.raises(NotImplementedError):
            e.deliver("x")


class TestMessageServer:
    def test_single_message_served_after_service_time(self):
        sim = Simulator()
        srv = EchoServer(sim, st=2.0)
        sim.schedule(1.0, srv.deliver, "m")
        sim.run()
        assert srv.handled == [(3.0, "m")]
        assert srv.busy_time == 2.0
        assert srv.served == 1

    def test_fifo_backlog(self):
        sim = Simulator()
        srv = EchoServer(sim, st=2.0)
        for i in range(3):
            sim.schedule(0.0, srv.deliver, i)
        sim.run()
        # Serial service: completions at 2, 4, 6 in arrival order.
        assert srv.handled == [(2.0, 0), (4.0, 1), (6.0, 2)]
        assert srv.busy_time == 6.0

    def test_busy_and_queue_length_transitions(self):
        sim = Simulator()
        srv = EchoServer(sim, st=5.0)
        srv.deliver("a")
        assert srv.busy
        assert srv.queue_length == 0
        srv.deliver("b")
        assert srv.queue_length == 1
        sim.run()
        assert not srv.busy
        assert srv.queue_length == 0

    def test_ledger_charged_per_message(self):
        sim = Simulator()
        ledger = RecordingLedger()
        srv = EchoServer(sim, st=1.5, ledger=ledger)
        srv.deliver("a")
        srv.deliver("b")
        sim.run()
        assert ledger.charges == [("proc", 1.5), ("proc", 1.5)]

    def test_zero_service_time_not_charged(self):
        sim = Simulator()
        ledger = RecordingLedger()
        srv = EchoServer(sim, st=0.0, ledger=ledger)
        srv.deliver("a")
        sim.run()
        assert ledger.charges == []
        assert srv.served == 1

    def test_negative_service_time_rejected(self):
        sim = Simulator()
        srv = EchoServer(sim, st=-1.0)
        with pytest.raises(ValueError):
            srv.deliver("a")

    def test_handler_sending_to_self_queues_behind_waiters(self):
        sim = Simulator()

        class Resender(MessageServer):
            def __init__(self, sim):
                super().__init__(sim, "r", ledger=None)
                self.order = []

            def service_time(self, message):
                return 1.0

            def cost_category(self, message):
                return "proc"

            def handle(self, message):
                self.order.append(message)
                if message == "first":
                    self.deliver("resent")

        srv = Resender(sim)
        srv.deliver("first")
        srv.deliver("second")
        sim.run()
        assert srv.order == ["first", "second", "resent"]

    def test_state_dependent_service_time(self):
        """Service time may depend on server state (CENTRAL scans a
        growing table); the charged busy time must follow it."""
        sim = Simulator()

        class Growing(MessageServer):
            def __init__(self, sim, ledger):
                super().__init__(sim, "g", ledger=ledger)
                self.scale = 1.0

            def service_time(self, message):
                return self.scale

            def cost_category(self, message):
                return "proc"

            def handle(self, message):
                self.scale += 1.0

        ledger = RecordingLedger()
        srv = Growing(sim, ledger)
        for _ in range(3):
            srv.deliver("m")
        sim.run()
        assert [a for _, a in ledger.charges] == [1.0, 2.0, 3.0]

    def test_queue_stat_time_average(self):
        sim = Simulator()
        srv = EchoServer(sim, st=4.0)
        srv.deliver("a")  # in service immediately; queue stays 0
        srv.deliver("b")  # waits 4 units
        sim.run()
        # queue length is 1 on [0,4), 0 on [4,8) -> mean 0.5 over 8 units
        assert srv.queue_stat.mean(sim.now) == pytest.approx(0.5)
