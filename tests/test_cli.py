"""Tests for the CLI (list/compare run fast; figure is smoke-tested
against a stubbed Study to keep the suite quick)."""

import pytest

from repro.experiments import cli

from test_experiments_reporting import fake_figure


class TestParser:
    def test_list_command(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure" in out and "Case 1" in out

    def test_figure_requires_number(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["figure"])

    def test_bad_figure_number_errors(self, capsys):
        assert cli.main(["figure", "9"]) == 2
        assert "2-7" in capsys.readouterr().err

    def test_unknown_profile_rejected(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["figure", "2", "--profile", "galactic"])

    def test_subcommand_required(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args([])


class TestFigureCommand:
    def test_figure_prints_report_and_csv(self, tmp_path, capsys, monkeypatch):
        fig = fake_figure()

        class StubStudy:
            def __init__(self, **kw):
                self.kw = kw

            def figure(self, number):
                assert number == 2
                return fig

        monkeypatch.setattr(cli, "Study", StubStudy)
        csv_path = tmp_path / "out.csv"
        rc = cli.main(["figure", "2", "--csv", str(csv_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure X" in out
        assert csv_path.exists()

    def test_rms_subset_forwarded(self, monkeypatch):
        captured = {}

        class StubStudy:
            def __init__(self, **kw):
                captured.update(kw)

            def figure(self, number):
                return fake_figure()

        monkeypatch.setattr(cli, "Study", StubStudy)
        cli.main(["figure", "3", "--rms", "LOWEST,CENTRAL", "--seed", "9"])
        assert captured["rms"] == ["LOWEST", "CENTRAL"]
        assert captured["seed"] == 9

    def test_quantity_override(self, monkeypatch, capsys):
        class StubStudy:
            def __init__(self, **kw):
                pass

            def figure(self, number):
                return fake_figure()

        monkeypatch.setattr(cli, "Study", StubStudy)
        cli.main(["figure", "6", "--quantity", "g_norm"])
        assert "g_norm" in capsys.readouterr().out


class TestEngineFlags:
    def test_engine_flags_parse(self):
        args = cli.build_parser().parse_args(
            ["figure", "2", "--jobs", "3", "--no-cache", "--resume",
             "--cache-dir", "/tmp/x"]
        )
        assert args.jobs == 3
        assert args.no_cache is True
        assert args.resume is True
        assert args.cache_dir == "/tmp/x"

    def test_engine_flag_defaults(self):
        args = cli.build_parser().parse_args(["figure", "2"])
        assert args.jobs is None
        assert args.no_cache is False
        assert args.resume is False
        assert args.cache_dir is None

    def test_engine_and_resume_forwarded_to_study(self, monkeypatch):
        captured = {}

        class StubStudy:
            def __init__(self, **kw):
                captured.update(kw)

            def figure(self, number):
                return fake_figure()

        monkeypatch.setattr(cli, "Study", StubStudy)
        cli.main(["figure", "2", "--jobs", "2", "--no-cache", "--resume"])
        engine = captured["engine"]
        assert engine.jobs == 2
        assert engine.cache.read is False
        assert engine.cache.write is True
        assert captured["resume"] is True

    def test_compare_accepts_jobs(self, monkeypatch):
        from repro.experiments.parallel import ExperimentEngine

        seen = {}

        class StubEngine(ExperimentEngine):
            def run_many(self, configs):
                seen["n"] = len(configs)
                from test_parallel_engine import stub_metrics

                return [stub_metrics(c.seed) for c in configs]

        monkeypatch.setattr(cli, "ExperimentEngine", StubEngine)
        assert cli.main(["compare", "--jobs", "2"]) == 0
        from repro.rms import rms_names

        assert seen["n"] == len(rms_names())


class TestTelemetryFlags:
    def test_telemetry_flags_parse(self):
        args = cli.build_parser().parse_args(
            ["figure", "2", "--telemetry", "--telemetry-dir", "/tmp/tel"]
        )
        assert args.telemetry is True
        assert args.telemetry_dir == "/tmp/tel"
        args = cli.build_parser().parse_args(["figure", "2"])
        assert args.telemetry is False

    def test_log_level_choices(self):
        args = cli.build_parser().parse_args(["--log-level", "debug", "list"])
        assert args.log_level == "debug"
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["--log-level", "chatty", "list"])

    def test_figure_with_telemetry_writes_run_dir(self, tmp_path, monkeypatch, capsys):
        class StubStudy:
            def __init__(self, **kw):
                pass

            def figure(self, number):
                from repro.telemetry import current

                # the ambient session is live while the study runs
                assert current().enabled
                current().event("stub.figure", number=number)
                return fake_figure()

        monkeypatch.setattr(cli, "Study", StubStudy)
        root = tmp_path / "tel"
        rc = cli.main(
            ["figure", "2", "--telemetry", "--telemetry-dir", str(root)]
        )
        assert rc == 0
        err = capsys.readouterr().err
        assert "telemetry written to" in err
        (run_dir,) = list(root.iterdir())
        assert (run_dir / "spans.jsonl").is_file()
        assert (run_dir / "metrics.json").is_file()

    def test_env_var_enables_telemetry(self, tmp_path, monkeypatch):
        class StubStudy:
            def __init__(self, **kw):
                pass

            def figure(self, number):
                return fake_figure()

        monkeypatch.setattr(cli, "Study", StubStudy)
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(tmp_path / "envtel"))
        assert cli.main(["figure", "2"]) == 0
        assert list((tmp_path / "envtel").iterdir())

    def test_no_telemetry_dir_without_flag(self, tmp_path, monkeypatch):
        class StubStudy:
            def __init__(self, **kw):
                pass

            def figure(self, number):
                from repro.telemetry import NULL_TELEMETRY, current

                assert current() is NULL_TELEMETRY
                return fake_figure()

        monkeypatch.setattr(cli, "Study", StubStudy)
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        monkeypatch.chdir(tmp_path)
        assert cli.main(["figure", "2"]) == 0
        assert not (tmp_path / "telemetry").exists()


class TestTelemetryCommand:
    def _record_run(self, root):
        from repro.telemetry import Telemetry, activate

        with Telemetry(root / "run-1") as session, activate(session):
            with session.span("engine.batch", size=2, jobs=1) as span:
                span.set(cache_hits=1, executed=1, cache_repairs=0)
        return root

    def test_summary_view(self, tmp_path, capsys):
        root = self._record_run(tmp_path / "tel")
        assert cli.main(["telemetry", "summary", str(root)]) == 0
        out = capsys.readouterr().out
        assert "telemetry run:" in out
        assert "engine.batch" in out

    def test_spans_view_with_filter(self, tmp_path, capsys):
        root = self._record_run(tmp_path / "tel")
        assert cli.main(
            ["telemetry", "spans", str(root), "--top", "5", "--name", "engine.batch"]
        ) == 0
        assert "engine.batch" in capsys.readouterr().out

    def test_tuner_view_empty(self, tmp_path, capsys):
        root = self._record_run(tmp_path / "tel")
        assert cli.main(["telemetry", "tuner", str(root)]) == 0
        assert "no tuner iterations" in capsys.readouterr().out

    def test_missing_dir_errors(self, tmp_path, capsys):
        assert cli.main(["telemetry", "summary", str(tmp_path / "nope")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_empty_run_errors_one_line(self, tmp_path, capsys):
        run = tmp_path / "run"
        run.mkdir()
        (run / "spans.jsonl").write_text("")
        for view in ("summary", "spans", "tuner"):
            assert cli.main(["telemetry", view, str(run)]) == 2
            err = capsys.readouterr().err
            assert err.startswith("error:")
            assert "no telemetry records" in err
            assert "Traceback" not in err

    def test_garbled_records_error_not_traceback(self, tmp_path, capsys):
        run = tmp_path / "run"
        run.mkdir()
        # a parseable line that is not a valid record (killed mid-write
        # leaves exactly this shape) used to raise KeyError
        (run / "spans.jsonl").write_text('{"type":"span"}\n')
        assert cli.main(["telemetry", "summary", str(run)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_view_required(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["telemetry"])


class TestFlightRecorderFlags:
    def test_flags_parse(self):
        args = cli.build_parser().parse_args(
            ["figure", "2", "--flight-recorder", "--flight-dir", "/tmp/fr"]
        )
        assert args.flight_recorder is True
        assert args.flight_dir == "/tmp/fr"
        args = cli.build_parser().parse_args(["figure", "2"])
        assert args.flight_recorder is False

    def test_flag_sets_env_and_enables(self, tmp_path, monkeypatch):
        from repro.telemetry import flightrec

        monkeypatch.delenv(flightrec.ENV_ENABLE, raising=False)
        monkeypatch.delenv(flightrec.ENV_DIR, raising=False)
        flightrec.disable()
        seen = {}

        class StubStudy:
            def __init__(self, **kw):
                pass

            def figure(self, number):
                # workers inherit the env; the parent records inline
                seen["env"] = cli.os.environ.get(flightrec.ENV_ENABLE)
                seen["rec"] = flightrec.current()
                return fake_figure()

        monkeypatch.setattr(cli, "Study", StubStudy)
        rc = cli.main(
            ["figure", "2", "--flight-recorder", "--flight-dir", str(tmp_path)]
        )
        assert rc == 0
        assert seen["env"] == "1"
        assert seen["rec"] is not None
        assert seen["rec"].directory == tmp_path
        # the scope tears the recorder down afterwards
        flightrec.disable()

    def test_cancelled_study_dumps_bundle(self, tmp_path, monkeypatch, capsys):
        from repro.telemetry import flightrec

        monkeypatch.delenv(flightrec.ENV_ENABLE, raising=False)
        monkeypatch.delenv(flightrec.ENV_DIR, raising=False)
        flightrec.disable()

        class StubStudy:
            def __init__(self, **kw):
                pass

            def figure(self, number):
                raise KeyboardInterrupt()

        monkeypatch.setattr(cli, "Study", StubStudy)
        rc = cli.main(
            ["figure", "2", "--flight-recorder", "--flight-dir", str(tmp_path)]
        )
        assert rc == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert "flight-recorder bundle written" in err
        (bundle,) = list(tmp_path.glob("bundle-*.json"))
        import json

        assert json.loads(bundle.read_text())["reason"] == "run.cancelled"
        flightrec.disable()

    def test_off_without_flag_or_env(self, tmp_path, monkeypatch):
        from repro.telemetry import flightrec

        monkeypatch.delenv(flightrec.ENV_ENABLE, raising=False)
        flightrec.disable()
        seen = {}

        class StubStudy:
            def __init__(self, **kw):
                pass

            def figure(self, number):
                seen["rec"] = flightrec.current()
                return fake_figure()

        monkeypatch.setattr(cli, "Study", StubStudy)
        assert cli.main(["figure", "2"]) == 0
        assert seen["rec"] is None


class TestAttribCommand:
    def _write_manifest(self, path):
        import json

        manifest = {
            "version": 2,
            "completed": {
                "ci:seed7:sa10:scales[1,2]:warm1:spec0:case1:LOWEST": {
                    "result": {
                        "points": [
                            {
                                "scale": 1.0,
                                "record": {"F": 100.0, "G": 15.0, "H": 1.0},
                                "attribution": {
                                    "f.useful|resource|r0|execution": 100.0,
                                    "g.schedule|scheduler|s0|m": 15.0,
                                    "h.job_control|resource|r0|m": 1.0,
                                },
                            }
                        ]
                    },
                    "metrics": [],
                }
            },
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(manifest))

    def test_reads_explicit_manifest(self, tmp_path, capsys):
        manifest = tmp_path / "study.json"
        self._write_manifest(manifest)
        assert cli.main(["attrib", str(manifest)]) == 0
        out = capsys.readouterr().out
        assert "conservation: exact" in out
        assert "case1:LOWEST" in out

    def test_default_source_is_cache_manifest(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        self._write_manifest(cache / "manifests" / "study.json")
        assert cli.main(["attrib", "--cache-dir", str(cache)]) == 0
        assert "conservation: exact" in capsys.readouterr().out

    def test_no_source_errors(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert cli.main(["attrib"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_violated_conservation_exits_nonzero(self, tmp_path, capsys):
        import json

        manifest = tmp_path / "study.json"
        self._write_manifest(manifest)
        payload = json.loads(manifest.read_text())
        point = payload["completed"][next(iter(payload["completed"]))]["result"][
            "points"
        ][0]
        point["record"]["G"] = 999.0  # breaks fsum(parts) == G
        manifest.write_text(json.dumps(payload))
        assert cli.main(["attrib", str(manifest)]) == 1
        assert "CONSERVATION VIOLATED" in capsys.readouterr().out


class TestBenchCheckCommand:
    def _baseline(self, tmp_path, name="BENCH_perf.json", **overrides):
        import json

        from test_benchcheck import record

        path = tmp_path / name
        path.write_text(json.dumps(record(**overrides)))
        return path

    def test_identity_passes(self, tmp_path, capsys):
        base = self._baseline(tmp_path)
        rc = cli.main(
            ["bench-check", "--baseline", str(base), "--current", str(base)]
        )
        assert rc == 0
        assert "verdict: PASS" in capsys.readouterr().out

    def test_missing_baseline_errors(self, tmp_path, capsys):
        rc = cli.main(["bench-check", "--baseline", str(tmp_path / "nope.json")])
        assert rc == 2
        assert "bench-perf" in capsys.readouterr().err

    def test_count_drift_fails_and_warn_only_downgrades(self, tmp_path, capsys):
        import json

        base = self._baseline(tmp_path)
        current = json.loads(base.read_text())
        current["study"]["baseline"]["simulations"] += 1
        cur_path = tmp_path / "current.json"
        cur_path.write_text(json.dumps(current))
        rc = cli.main(
            ["bench-check", "--baseline", str(base), "--current", str(cur_path)]
        )
        assert rc == 1
        assert "verdict: FAIL" in capsys.readouterr().out
        rc = cli.main(
            [
                "bench-check",
                "--baseline",
                str(base),
                "--current",
                str(cur_path),
                "--warn-only",
            ]
        )
        assert rc == 0
        assert "--warn-only" in capsys.readouterr().out

    def test_bad_tolerances_error(self, tmp_path, capsys):
        base = self._baseline(tmp_path)
        rc = cli.main(
            [
                "bench-check",
                "--baseline",
                str(base),
                "--current",
                str(base),
                "--warn-tolerance",
                "0.5",
                "--fail-tolerance",
                "0.1",
            ]
        )
        assert rc == 2
        assert "tolerances" in capsys.readouterr().err
