"""Pytest configuration: make tests/ importable for shared helpers."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
