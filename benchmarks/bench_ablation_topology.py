"""Ablation: does the Mercator-substitute topology model matter?

DESIGN.md substitutes Mercator Internet maps with synthetic graphs
(preferential-attachment backbone + Waxman shortcuts).  If results
depended sharply on that choice, the substitution would be suspect.
This bench reruns the same managed system over three topology flavours
— PA-only, PA+Waxman (default), and a denser variant — by regenerating
the system with different seeds/parameters and comparing operating
points.
"""

from repro.core.ledger import CostLedger
from repro.experiments import SimulationConfig, build_system, summarize
from repro.experiments.reporting import format_table
from repro.grid import JobState
from repro.sim import RngHub
from repro.topology import TopologyParams, generate_topology


def run_with_seed(seed: int):
    cfg = SimulationConfig(
        rms="LOWEST",
        n_schedulers=8,
        n_resources=24,
        workload_rate=0.0067,
        update_interval=8.5,
        horizon=12000.0,
        seed=seed,
    )
    system = build_system(cfg)
    system.sim.run(until=cfg.horizon)
    deadline = cfg.horizon + cfg.drain
    while system.sim.now < deadline and any(
        j.state != JobState.COMPLETED for j in system.jobs
    ):
        system.sim.run(until=min(deadline, system.sim.now + 500.0))
    return summarize(system)


def sweep():
    return [run_with_seed(s) for s in (7, 17, 27, 37)]


def test_ablation_topology_instances(benchmark):
    runs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [i, m.record.G, m.efficiency, m.success_rate] for i, m in enumerate(runs)
    ]
    print()
    print(format_table(["instance", "G", "E", "success"], rows, precision=3))
    # Across independent topology instances the operating point is
    # stable: efficiencies within a band, success consistently healthy.
    es = [m.efficiency for m in runs]
    assert max(es) - min(es) < 0.15
    assert all(m.success_rate > 0.85 for m in runs)


def test_topology_parameters_do_not_flip_shape(benchmark):
    """Waxman shortcuts on/off change path lengths, not connectivity or
    the message-cost structure; the generator invariants hold."""

    def build():
        rng = RngHub(3).stream("topology")
        sparse = generate_topology(TopologyParams(n_nodes=200, waxman_alpha=0.0), rng)
        rng2 = RngHub(3).stream("topology")
        dense = generate_topology(
            TopologyParams(n_nodes=200, waxman_alpha=0.5, waxman_beta=0.8), rng2
        )
        return sparse, dense

    sparse, dense = benchmark.pedantic(build, rounds=1, iterations=1)
    assert sparse.is_connected() and dense.is_connected()
    assert dense.n_links > sparse.n_links
