"""Ablation: sensitivity of the superschedulers to the middleware model.

The paper models the Grid middleware as "a simple queue with infinite
capacity and finite but small service time".  How small is load-
bearing?  This bench sweeps the middleware service time and watches
S-I's overhead and placement quality respond — the middleware is a
single shared server, so its service time bounds the whole
inter-scheduler control plane.
"""

from dataclasses import replace

from repro.experiments import SimulationConfig, run_simulation
from repro.experiments.reporting import format_table
from repro.grid.costs import CostModel


def sweep():
    rows = []
    for svc in (0.25, 1.0, 4.0, 16.0):
        cfg = SimulationConfig(
            rms="S-I",
            n_schedulers=8,
            n_resources=24,
            workload_rate=0.0067,
            update_interval=8.5,
            horizon=12000.0,
            seed=7,
            costs=replace(CostModel(), middleware_service=svc),
        )
        m = run_simulation(cfg)
        rows.append([svc, m.record.G, m.efficiency, m.success_rate, m.mean_response])
    return rows


def test_ablation_middleware_service_time(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["mw service", "G", "E", "success", "mean resp"], rows, precision=3
        )
    )
    # Overhead grows monotonically-ish with middleware service time...
    assert rows[-1][1] > rows[0][1]
    # ...and at a "small" service time the model is insensitive: the
    # first two sweeps agree within a few percent on success rate.
    assert abs(rows[0][3] - rows[1][3]) < 0.05
