"""Ablation: robustness of the metric to the efficiency target E0.

The paper fixes E(k0) in [0.38, 0.42] without arguing the choice.  If
the *ranking* produced by the metric flipped with the band, the metric
would be fragile.  This bench tunes LOWEST at k=2 against three
different targets and checks the isoefficiency machinery tracks each —
and that the measured overhead responds monotonically (a higher
efficiency target permits less overhead).
"""

from repro.core.annealing import AnnealingSchedule
from repro.core.tuner import EnablerTuner
from repro.experiments.cases import get_case, make_simulate
from repro.experiments.config import PROFILES
from repro.experiments.reporting import format_table


def sweep():
    case = get_case(1)
    simulate = make_simulate(case, "LOWEST", PROFILES["ci"])
    rows = []
    for e0 in (0.40, 0.55, 0.70):
        tuner = EnablerTuner(
            simulate,
            case.enabler_space(),
            schedule=AnnealingSchedule(iterations=8, t0=0.5),
            e_tol=0.04,
            seed=5,
        )
        point = tuner.tune(2.0, e0)
        rows.append([e0, point.G, point.efficiency, point.success_rate, point.feasible])
    return rows


def test_ablation_efficiency_target(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["E0 target", "G(2)", "E achieved", "success", "feasible"],
            rows,
            precision=3,
        )
    )
    # Achieved efficiency tracks the target...
    for e0, _, e, _, _ in rows:
        assert abs(e - e0) < 0.08, f"target {e0} missed badly: {e}"
    # ...and a higher target (less overhead allowed) yields smaller G.
    gs = [r[1] for r in rows]
    assert gs[0] > gs[-1]
