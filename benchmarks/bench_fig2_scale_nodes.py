"""Figure 2 / Table 2 — Case 1: G(k) when the RP scales by network size.

Regenerates the paper's Figure 2 series: minimum tuned RMS overhead
G(k) for all seven designs as resources, schedulers, and workload grow
together.  Paper shapes to hold: the distributed designs start with far
higher overhead than CENTRAL but track the workload; CENTRAL cannot
sustain its base efficiency as the pool grows (its measured points go
infeasible and Eq. (2) fails); LOWEST is the cheapest distributed
design, the push+pull hybrids the most expensive.
"""

from _shared import run_figure


def test_figure2_scaling_rp_by_nodes(benchmark):
    fig = benchmark.pedantic(run_figure, args=(2,), rounds=1, iterations=1)
    series = fig.series

    # Distributed designs incur substantially larger base overhead than
    # CENTRAL (paper §3.4, Fig. 2 discussion).
    central_base = series["CENTRAL"].G[0]
    for name in ("LOWEST", "RESERVE", "AUCTION", "S-I", "R-I", "Sy-I"):
        assert series[name].G[0] > 2.0 * central_base, (
            f"{name} base overhead should dwarf CENTRAL's"
        )

    # CENTRAL is the design that stops being isoefficiency-feasible as
    # the network grows.
    central_feasible = [p.feasible for p in series["CENTRAL"].result.points]
    lowest_feasible = [p.feasible for p in series["LOWEST"].result.points]
    assert sum(lowest_feasible) > sum(central_feasible)

    # LOWEST's overhead stays within a modest factor of the workload
    # growth (scalable); its normalized overhead is the smallest or
    # near-smallest among the distributed designs.
    g_last = {n: s.g_norm[-1] for n, s in series.items() if n != "CENTRAL"}
    k_last = fig.scales[-1]
    assert g_last["LOWEST"] <= 2.2 * k_last
    assert g_last["LOWEST"] <= min(g_last.values()) * 1.35
