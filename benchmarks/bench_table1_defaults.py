"""Table 1: the common variables, and the base-configuration run they
parameterize.

This bench times one base-scale simulation (the unit every other bench
multiplies) and prints the Table-1 constants alongside the measured
base operating point of a representative distributed RMS.
"""

from repro.experiments import CommonParameters, SimulationConfig, run_simulation
from repro.experiments.reporting import format_table


def base_config() -> SimulationConfig:
    return SimulationConfig(
        rms="LOWEST",
        n_schedulers=8,
        n_resources=24,
        workload_rate=0.0067,
        update_interval=8.5,
        horizon=12000.0,
        seed=7,
    )


def test_table1_common_variables(benchmark):
    common = CommonParameters()
    metrics = benchmark.pedantic(run_simulation, args=(base_config(),), rounds=1, iterations=1)
    print()
    print("Table 1 — common variables (paper, verbatim):")
    print(
        format_table(
            ["variable", "value", "meaning"],
            [
                ["T_CPU", common.t_cpu, "runtime <= T_CPU -> LOCAL; else REMOTE"],
                ["T_l", common.t_l, "threshold load at a scheduler"],
                ["U_b", "u*runtime, u~U[2,5]", "user benefit (success) bound"],
                ["E(k0) band", str(common.efficiency_band), "Step-1 efficiency band"],
            ],
            precision=1,
        )
    )
    print()
    print(
        f"Base run (LOWEST): E={metrics.efficiency:.3f}  "
        f"success={metrics.success_rate:.2f}  G={metrics.record.G:.0f}"
    )
    assert common.t_cpu == 700.0
    assert common.t_l == 0.5
    # The calibrated base configuration sits at/near the paper's band.
    assert 0.3 < metrics.efficiency < 0.55
    assert metrics.success_rate > 0.85
