"""Shared state for the benchmark harness.

All figure benches draw from one :class:`~repro.experiments.Study` per
profile, so the Case-3 measurement is paid once and reused by Figures
4, 6, and 7 — exactly as in the paper, where all three figures read the
same experiment.

Every simulation the studies run goes through one process-wide
:class:`~repro.experiments.parallel.ExperimentEngine`, so benchmark
sweeps fan out over worker processes and re-runs are served from the
content-addressed run cache (results are identical either way — the
runs are deterministic and keyed by config content).

Environment knobs:

* ``REPRO_BENCH_PROFILE`` — ``ci`` (default) or ``full``.
* ``REPRO_BENCH_SA_ITERS`` — annealing iterations per tuning problem
  (default 8 for ``ci``; use the profile default for archival runs).
* ``REPRO_JOBS`` — worker processes for independent runs (default 1;
  0 = one per CPU).
* ``REPRO_CACHE_DIR`` — run-cache location (default ``.repro-cache``).
* ``REPRO_NO_CACHE`` — set to 1 to skip cache reads (still writes).
* ``REPRO_RESUME`` — set to 1 to checkpoint/resume completed
  (case, RMS) points across invocations.
"""

from __future__ import annotations

import os
from typing import Dict

from repro.experiments import Study
from repro.experiments.parallel import ExperimentEngine, RunCache
from repro.experiments.reporting import figure_report

_PROFILE = os.environ.get("REPRO_BENCH_PROFILE", "ci")
_SA_ITERS = int(os.environ.get("REPRO_BENCH_SA_ITERS", "8"))
_NO_CACHE = os.environ.get("REPRO_NO_CACHE", "") not in ("", "0")
_RESUME = os.environ.get("REPRO_RESUME", "") not in ("", "0")

_studies: Dict[str, Study] = {}
_engine: ExperimentEngine | None = None


def shared_engine() -> ExperimentEngine:
    """The process-wide experiment engine used by every bench."""
    global _engine
    if _engine is None:
        _engine = ExperimentEngine(cache=RunCache(read=not _NO_CACHE))
    return _engine


def shared_study() -> Study:
    """The process-wide Study used by every figure bench."""
    study = _studies.get(_PROFILE)
    if study is None:
        study = Study(
            profile=_PROFILE,
            sa_iterations=_SA_ITERS,
            engine=shared_engine(),
            resume=_RESUME,
        )
        _studies[_PROFILE] = study
    return study


def run_figure(number: int, quantity: str = "G", precision: int = 1):
    """Regenerate one paper figure and print its report; returns the data."""
    fig = shared_study().figure(number)
    print()
    print(figure_report(fig, quantity, precision=precision))
    return fig
