"""Shared state for the benchmark harness.

All figure benches draw from one :class:`~repro.experiments.Study` per
profile, so the Case-3 measurement is paid once and reused by Figures
4, 6, and 7 — exactly as in the paper, where all three figures read the
same experiment.

Environment knobs:

* ``REPRO_BENCH_PROFILE`` — ``ci`` (default) or ``full``.
* ``REPRO_BENCH_SA_ITERS`` — annealing iterations per tuning problem
  (default 8 for ``ci``; use the profile default for archival runs).
"""

from __future__ import annotations

import os
from typing import Dict

from repro.experiments import Study
from repro.experiments.reporting import figure_report

_PROFILE = os.environ.get("REPRO_BENCH_PROFILE", "ci")
_SA_ITERS = int(os.environ.get("REPRO_BENCH_SA_ITERS", "8"))

_studies: Dict[str, Study] = {}


def shared_study() -> Study:
    """The process-wide Study used by every figure bench."""
    study = _studies.get(_PROFILE)
    if study is None:
        study = Study(profile=_PROFILE, sa_iterations=_SA_ITERS)
        _studies[_PROFILE] = study
    return study


def run_figure(number: int, quantity: str = "G", precision: int = 1):
    """Regenerate one paper figure and print its report; returns the data."""
    fig = shared_study().figure(number)
    print()
    print(figure_report(fig, quantity, precision=precision))
    return fig
