"""The tracked performance benchmark: kernel, sims, and study wall clock.

Runs :func:`repro.experiments.benchperf.run_bench` — the same
measurement behind ``repro bench-perf`` — and writes the
``BENCH_perf.json`` record this repo tracks over time:

* kernel event throughput (events/sec) per registered backend, on a
  steady-state storm and on the future-event-list scaling case,
* end-to-end simulation throughput (sims/sec),
* wall clock + tuner evaluation counts for a full isoefficiency study
  in three arms: the historical serial cold-start tuner (baseline) and
  the warm-started speculative tuner at ``jobs=1`` and ``jobs=N``.

Timings are machine-dependent and recorded, not gated.  What *is*
asserted is the determinism contract: the speculative arms' tuned
points must be identical across worker counts, and warm-started search
must not do more simulation work than the baseline.

Environment knobs (shared with the rest of the bench suite):
``REPRO_BENCH_PROFILE``, ``REPRO_BENCH_SA_ITERS``, ``REPRO_JOBS``
(parallel-arm worker count, default 4), and ``REPRO_BENCH_RMS``
(comma-separated subset; default: all seven designs).

Also runnable directly — ``python benchmarks/bench_perf.py`` — which
prints the report and writes ``BENCH_perf.json`` in the working
directory.
"""

from __future__ import annotations

import os

from repro.experiments.benchperf import render_report, run_bench, write_bench

_PROFILE = os.environ.get("REPRO_BENCH_PROFILE", "ci")
_SA_ITERS = os.environ.get("REPRO_BENCH_SA_ITERS", "")
_RMS = os.environ.get("REPRO_BENCH_RMS", "")
_JOBS = int(os.environ.get("REPRO_JOBS", "") or "4")


def run_perf_bench(output: str = "BENCH_perf.json") -> dict:
    """Run the full benchmark, print its report, write the record."""
    payload = run_bench(
        profile=_PROFILE,
        rms=_RMS.split(",") if _RMS else None,
        sa_iterations=int(_SA_ITERS) if _SA_ITERS else None,
        jobs=_JOBS if _JOBS > 0 else 4,
    )
    print()
    print(render_report(payload))
    path = write_bench(payload, output)
    print(f"benchmark record written to {path}")
    return payload


def test_perf_record(benchmark, tmp_path):
    payload = benchmark.pedantic(
        run_perf_bench, args=(str(tmp_path / "BENCH_perf.json"),),
        rounds=1, iterations=1,
    )
    study = payload["study"]

    # Worker count must never change tuned points.
    assert study["tuned_points_identical_across_jobs"]

    # The warm-started walk exists to cut evaluations: it must never do
    # more simulation work than the cold-start baseline.
    for arm in study["arms"]:
        assert arm["simulations"] <= study["baseline"]["simulations"]

    # Structural soundness of the record.
    kernel = payload["kernel"]
    for cases in kernel["backends"].values():
        for rec in cases.values():
            assert rec["events_per_sec"] > 0
    # The fast backend exists to win the at-scale case; machine noise
    # never flips a >3x algorithmic gap below parity.
    assert kernel["speedup_fast_vs_reference"]["fel"] > 1.0
    assert payload["sims"]["sims_per_sec"] > 0
    assert set(study["baseline"]["tuned"]) == set(payload["rms"])


if __name__ == "__main__":
    run_perf_bench()
