"""Extension bench (paper future work b+c): H(k) under DAG workloads.

Scales the system Case-1 style while the workload carries precedence
constraints, and reads the *RP overhead* curve H(k) instead of G(k).
A design that load-shares aggressively (LOWEST) pays growing staging
costs as pipelines fragment across more clusters; CENTRAL's single
cluster space pays none.  This is the measurement the paper's
conclusion proposes as future work.
"""

from repro.experiments import SimulationConfig, build_system, summarize
from repro.experiments.reporting import format_table
from repro.grid import JobState


def run_point(rms: str, k: int):
    cfg = SimulationConfig(
        rms=rms,
        n_schedulers=4 * k,
        n_resources=12 * k,
        workload_rate=12 * 0.00028 * k,
        update_interval=8.5,
        horizon=8000.0,
        drain=60000.0,
        dependency_prob=0.5,
        seed=31,
    )
    system = build_system(cfg)
    system.sim.run(until=cfg.horizon)
    deadline = cfg.horizon + cfg.drain
    while system.sim.now < deadline and any(
        j.state != JobState.COMPLETED for j in system.jobs
    ):
        system.sim.run(until=min(deadline, system.sim.now + 2000.0))
    m = summarize(system)
    staged = system.coordinator.staged_edges if system.coordinator else 0
    return m, staged


def sweep():
    out = {}
    for rms in ("LOWEST", "CENTRAL"):
        out[rms] = [run_point(rms, k) for k in (1, 2, 3)]
    return out


def test_extension_hk_scalability_under_dags(benchmark):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for rms, pts in results.items():
        rows.append(
            [rms]
            + [m.record.H for m, _ in pts]
            + [staged for _, staged in pts]
        )
    print()
    print(
        format_table(
            ["RMS", "H(1)", "H(2)", "H(3)", "edges(1)", "edges(2)", "edges(3)"],
            rows,
            precision=1,
        )
    )
    lowest = results["LOWEST"]
    central = results["CENTRAL"]
    # H grows with scale for the load-sharing design...
    assert lowest[-1][0].record.H > lowest[0][0].record.H
    # ...and exceeds CENTRAL's H at top scale (CENTRAL never stages
    # across clusters: it has one cluster space).
    assert lowest[-1][0].record.H > central[-1][0].record.H
    assert central[-1][1] == 0  # no cross-cluster staging under CENTRAL
