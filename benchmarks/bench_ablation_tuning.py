"""Ablation: does enabler tuning matter for the metric?

DESIGN.md calls out the simulated-annealing enabler tuning (paper Step
3) as a load-bearing design choice.  This bench compares the overhead
G(k) measured (a) at the tuned settings and (b) at frozen default
settings, at an up-scaled Case-1 point.  If tuning were cosmetic, the
two would agree and the "minimum cost" in the metric's definition would
be vacuous.
"""

from repro.core.annealing import AnnealingSchedule
from repro.core.tuner import EnablerTuner
from repro.experiments.cases import get_case, make_simulate
from repro.experiments.config import PROFILES
from repro.experiments.reporting import format_table


def measure(rms: str = "LOWEST", k: float = 3.0):
    case = get_case(1)
    profile = PROFILES["ci"]
    simulate = make_simulate(case, rms, profile)
    tuner = EnablerTuner(
        simulate,
        case.enabler_space(),
        schedule=AnnealingSchedule(iterations=8, t0=0.5),
        seed=3,
    )
    base = tuner.tune_base(1.0)
    tuned = tuner.tune(k, base.efficiency)
    frozen = simulate(k, case.enabler_space().default_settings())
    return base, tuned, frozen


def test_ablation_enabler_tuning(benchmark):
    base, tuned, frozen = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [
        ["tuned", tuned.G, tuned.efficiency, tuned.success_rate],
        ["frozen defaults", frozen.record.G, frozen.record.efficiency, frozen.success_rate],
    ]
    print()
    print(f"Case 1, LOWEST, k=3 (E0={base.efficiency:.3f}):")
    print(format_table(["settings", "G(k)", "E(k)", "success"], rows, precision=3))

    # Tuning must land (much) closer to the isoefficiency target than
    # the frozen defaults do.
    tuned_gap = abs(tuned.efficiency - base.efficiency)
    frozen_gap = abs(frozen.record.efficiency - base.efficiency)
    assert tuned_gap <= frozen_gap + 1e-9
    # And the tuned point must remain a healthy system.
    assert tuned.success_rate >= 0.85
