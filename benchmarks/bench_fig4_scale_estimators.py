"""Figure 4 / Table 4 — Case 3: G(k) when the RMS scales by estimators.

Fixed network; the status-estimator plane (and the workload) grow with
k.  Each extra estimator fragments cluster coverage, so schedulers
process more forwarded status batches per window — and the push+pull
hybrids (AUCTION, Sy-I) additionally re-evaluate their advertisement /
auction triggers on every one of them.  Paper shape to hold: the
hybrids' overhead outgrows the pure designs' as k rises (they are "no
longer scalable after k > 3").
"""

from _shared import run_figure


def test_figure4_scaling_rms_by_estimators(benchmark):
    fig = benchmark.pedantic(run_figure, args=(4,), rounds=1, iterations=1)
    series = fig.series

    # Overhead grows with the estimator plane for everyone.
    for name, s in series.items():
        if name == "CENTRAL":
            continue
        assert s.G[-1] > s.G[0], f"{name}: estimator scaling must cost overhead"

    # The hybrids end the path at least as expensive (normalized) as
    # the cheapest pure design.
    pure = min(series["LOWEST"].g_norm[-1], series["S-I"].g_norm[-1])
    assert series["AUCTION"].g_norm[-1] >= 0.95 * pure
    assert series["Sy-I"].g_norm[-1] >= 0.95 * pure

    # Mean normalized slope ranks the hybrids no better than LOWEST.
    assert (
        series["AUCTION"].result.slopes.mean_g_slope
        >= 0.9 * series["LOWEST"].result.slopes.mean_g_slope
    )
