"""Figure 5 / Table 5 — Case 4: G(k) when the RMS scales by L_p.

Fixed network; the number of peers contacted per scheduling action (and
the workload) grow with k.  Enablers here are the update interval, the
volunteering interval, and the link delay (Table 5).  Paper shapes to
hold: raising the fan-out buys the pull designs (LOWEST, S-I) little
beyond k = 2 — their per-job polling bill grows with L_p; RESERVE's
reservation churn makes it unscalable at high k; the hybrids, which
lean on their push plane, tolerate larger L_p comparatively better.
"""

from _shared import run_figure


def test_figure5_scaling_rms_by_lp(benchmark):
    fig = benchmark.pedantic(run_figure, args=(5,), rounds=1, iterations=1)
    series = fig.series

    # Polling overhead rises with L_p for the pull designs.
    for name in ("LOWEST", "S-I"):
        assert series[name].G[-1] > series[name].G[0]

    # Pull designs' overhead keeps growing across the upper half of the
    # path (they are the ones paying per-job x L_p).
    for name in ("LOWEST", "S-I"):
        g = series[name].g_norm
        assert g[-1] > g[len(g) // 2] * 1.02

    # CENTRAL ignores L_p entirely: its overhead moves only with the
    # workload, not the fan-out — it provides the control series.
    assert series["CENTRAL"].result is not None
