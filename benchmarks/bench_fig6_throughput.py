"""Figure 6 — throughput under estimator scaling (same run as Fig. 4).

The paper reads Figure 6 off the Case-3 experiment: throughput (jobs
completed per unit time) as the estimator plane scales.  Shape to hold:
the pure designs convert the scaled workload into throughput roughly
proportionally, while the hybrids' throughput growth stalls at high k
(AUCTION "starts falling after k = 5", Sy-I "shows no improvement at
k > 4" in the paper's 6-point path; the CI path compresses this to the
top scale).
"""

from _shared import run_figure, shared_study


def test_figure6_throughput_under_estimator_scaling(benchmark):
    fig = benchmark.pedantic(
        run_figure, args=(6, "throughput", 5), rounds=1, iterations=1
    )
    series = fig.series

    # Workload scales ~k: the well-behaved pull design's throughput
    # must grow substantially across the path.
    tp = series["LOWEST"].throughput
    assert tp[-1] > 1.5 * tp[0]

    # The hybrids do not out-deliver the best pure design at top scale.
    best_pure = max(series["LOWEST"].throughput[-1], series["S-I"].throughput[-1])
    assert series["AUCTION"].throughput[-1] <= best_pure * 1.1
    assert series["Sy-I"].throughput[-1] <= best_pure * 1.1
