"""Figure 7 — mean response time under estimator scaling (Case 3 run).

The response-time view of the same experiment as Figures 4 and 6.
Shape to hold: response times for the hybrids deteriorate relative to
the pure designs as the estimator plane scales (the paper sees "similar
results ... for job response times" as for throughput).
"""

from _shared import run_figure


def test_figure7_response_under_estimator_scaling(benchmark):
    fig = benchmark.pedantic(
        run_figure, args=(7, "response", 1), rounds=1, iterations=1
    )
    series = fig.series

    # Sanity: every design produced finite response times at all scales.
    for name, s in series.items():
        assert all(r == r and r > 0 for r in s.response), name

    # At top scale the hybrids' mean response is no better than the
    # cheapest pure design's.
    best_pure = min(series["LOWEST"].response[-1], series["S-I"].response[-1])
    assert series["AUCTION"].response[-1] >= 0.9 * best_pure
    assert series["Sy-I"].response[-1] >= 0.9 * best_pure
