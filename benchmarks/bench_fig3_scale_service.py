"""Figure 3 / Table 3 — Case 2: G(k) when the RP scales by service rate.

Fixed network; resource service rates and the workload grow with k.
Paper shapes to hold: CENTRAL is competitive with (or better than) most
distributed designs at low k — its per-decision cost is fixed because
the pool size is — but it is the design that degrades by the top of the
path, when the scaled decision/update rate saturates its single
scheduler; LOWEST remains the best-behaved model overall.
"""

from _shared import run_figure


def test_figure3_scaling_rp_by_service_rate(benchmark):
    fig = benchmark.pedantic(run_figure, args=(3,), rounds=1, iterations=1)
    series = fig.series

    # At base scale CENTRAL's overhead is far below the distributed
    # designs' (fixed pool, no polling).
    assert series["CENTRAL"].G[0] < min(
        s.G[0] for n, s in series.items() if n != "CENTRAL"
    )

    # By the top of the path CENTRAL has lost feasibility while the
    # distributed pull design still holds the band.
    assert not series["CENTRAL"].result.points[-1].feasible
    lowest_feas = [p.feasible for p in series["LOWEST"].result.points]
    central_feas = [p.feasible for p in series["CENTRAL"].result.points]
    assert sum(lowest_feas) >= sum(central_feas)

    # LOWEST scales: its overhead grows no faster than ~linearly in k.
    k_last = fig.scales[-1]
    assert series["LOWEST"].g_norm[-1] <= 2.0 * k_last
