"""Ablation: the status-update suppression optimization.

The paper gives every periodic scheme the same optimization: "if
loading conditions at the resource did not change significantly from
the previous update, an update might be suppressed."  This bench
measures its contribution by disabling keepalive-bounded suppression
(every tick sends) and comparing the RMS overhead.
"""

from repro.experiments import SimulationConfig, build_system, summarize
from repro.experiments.reporting import format_table
from repro.grid import JobState


def run_one(suppression: bool):
    cfg = SimulationConfig(
        rms="LOWEST",
        n_schedulers=8,
        n_resources=24,
        workload_rate=0.0067,
        update_interval=8.5,
        horizon=12000.0,
        seed=7,
    )
    system = build_system(cfg)
    if not suppression:
        # Rewire every resource to report unconditionally: a keepalive
        # budget of 1 suppressed tick means "send every tick".
        for res in system.resources:
            res.stop_reporting()
            res.start_reporting(cfg.update_interval, max_silence=1)
    system.sim.run(until=cfg.horizon)
    deadline = cfg.horizon + cfg.drain
    while system.sim.now < deadline and any(
        j.state != JobState.COMPLETED for j in system.jobs
    ):
        system.sim.run(until=min(deadline, system.sim.now + 500.0))
    return summarize(system)


def both():
    return run_one(True), run_one(False)


def test_ablation_update_suppression(benchmark):
    with_supp, without = benchmark.pedantic(both, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["suppression", "G", "E", "success", "messages"],
            [
                ["on (paper)", with_supp.record.G, with_supp.efficiency,
                 with_supp.success_rate, with_supp.messages_sent],
                ["off", without.record.G, without.efficiency,
                 without.success_rate, without.messages_sent],
            ],
            precision=3,
        )
    )
    # Suppression must save real update traffic and overhead.
    assert without.messages_sent > with_supp.messages_sent
    assert without.record.G > with_supp.record.G
