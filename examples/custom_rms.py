#!/usr/bin/env python3
"""Extend the framework with your own RMS and measure its scalability.

The scalability metric is design-agnostic: anything that subclasses
``SchedulerBase`` (and registers an ``RMSInfo``) can be dropped into
the measurement procedure.  Here we add **TWO-CHOICE**, the classic
power-of-two-choices load sharer: on a REMOTE job it polls exactly two
random peers and sends the job to the less loaded of the two candidate
clusters — a leaner cousin of LOWEST.

Run:  python examples/custom_rms.py
"""

from repro.core import Category
from repro.experiments import SimulationConfig, build_system, summarize
from repro.experiments.reporting import format_table
from repro.grid import JobState
from repro.network import Message, MessageKind
from repro.rms import RMSInfo, LowestScheduler
from repro.rms import registry as rms_registry


class TwoChoiceScheduler(LowestScheduler):
    """Power-of-two-choices: LOWEST with a hard fan-out of two.

    Reuses LOWEST's entire poll/decide machinery and only pins the
    fan-out, ignoring the configured ``L_p``.
    """

    def on_remote_job(self, job) -> None:
        saved = self.l_p
        self.l_p = min(2, saved) if saved else 2
        try:
            super().on_remote_job(job)
        finally:
            self.l_p = saved


TWO_CHOICE_INFO = RMSInfo(
    name="TWO-CHOICE",
    scheduler_cls=TwoChoiceScheduler,
    mechanism="pull",
)


def register() -> None:
    """Install TWO-CHOICE into the RMS registry (idempotent).

    Registers by name only: ``ALL_RMS`` stays exactly the paper's seven
    so the reproduction harness is unaffected by extensions.
    """
    if "TWO-CHOICE" not in rms_registry.RMS_BY_NAME:
        rms_registry.RMS_BY_NAME["TWO-CHOICE"] = TWO_CHOICE_INFO


def run_one(rms: str, l_p: int):
    sys_ = build_system(
        SimulationConfig(
            rms=rms,
            n_schedulers=8,
            n_resources=24,
            workload_rate=0.0067,
            update_interval=8.5,
            l_p=l_p,
            horizon=12000.0,
            seed=11,
        )
    )
    sys_.sim.run(until=sys_.config.horizon)
    deadline = sys_.config.horizon + sys_.config.drain
    while sys_.sim.now < deadline and any(
        j.state != JobState.COMPLETED for j in sys_.jobs
    ):
        sys_.sim.run(until=min(deadline, sys_.sim.now + 500.0))
    poll_cost = sys_.ledger.total(Category.POLL)
    return summarize(sys_), poll_cost


def main() -> None:
    register()
    rows = []
    for rms, l_p in (("LOWEST", 6), ("TWO-CHOICE", 6)):
        m, poll_cost = run_one(rms, l_p)
        rows.append([rms, l_p, poll_cost, m.success_rate, m.mean_response])
    print("Custom RMS vs LOWEST at a wasteful fan-out (configured L_p = 6):\n")
    print(
        format_table(
            ["RMS", "L_p cfg", "poll cost [tu]", "success", "mean resp"],
            rows,
            precision=3,
        )
    )
    ratio = rows[1][2] / rows[0][2] if rows[0][2] else float("nan")
    print(
        f"\nTWO-CHOICE caps its polling at two peers regardless of the"
        f"\nconfigured L_p: it pays {ratio:.0%} of LOWEST's polling overhead"
        f"\n(the g.poll ledger category) for essentially the same placement"
        f"\nquality — the power of two choices."
    )


if __name__ == "__main__":
    main()
