#!/usr/bin/env python3
"""Robustness under control-plane message loss.

The paper assumes a lossless network; this example exercises the
substrate beyond it.  The transport drops control-plane messages
(status updates, polls, reservations, bids) with increasing
probability while the job plane stays reliable — the standard grid
middleware situation — and we watch each protocol degrade.

Pull protocols (LOWEST, S-I) degrade gently: a lost poll reply just
means deciding on partial information after the timeout.  Push
protocols lose advertisements outright, so their remote-placement
opportunities evaporate and jobs fall back to (possibly loaded) local
clusters.

Run:  python examples/failure_injection.py
"""

from repro.experiments import SimulationConfig, build_system, summarize
from repro.experiments.reporting import format_table
from repro.faults import FaultPlan
from repro.grid import JobState


def main() -> None:
    losses = (0.0, 0.1, 0.25, 0.5)
    designs = ("LOWEST", "RESERVE", "S-I", "Sy-I")
    rows = []
    for rms in designs:
        cells = [rms]
        for loss in losses:
            system = build_system(
                SimulationConfig(
                    rms=rms,
                    n_schedulers=8,
                    n_resources=24,
                    workload_rate=0.0067,
                    update_interval=8.5,
                    horizon=12000.0,
                    drain=60000.0,
                    faults=FaultPlan(link_loss=loss),
                    seed=13,
                )
            )
            cfg = system.config
            system.sim.run(until=cfg.horizon)
            deadline = cfg.horizon + cfg.drain
            while system.sim.now < deadline and any(
                j.state != JobState.COMPLETED for j in system.jobs
            ):
                system.sim.run(until=min(deadline, system.sim.now + 2000.0))
            m = summarize(system)
            assert m.jobs_completed == m.jobs_submitted, "protocol stranded a job!"
            transfers = sum(s.jobs_sent_remote for s in system.schedulers)
            cells.append(f"{m.success_rate:.2f}/{transfers}")
        rows.append(cells)

    headers = ["RMS"] + [f"loss={p:.0%}" for p in losses]
    print("success rate / remote transfers under control-plane message loss:\n")
    print(format_table(headers, rows, precision=3))
    print(
        "\nEvery cell required all submitted jobs to terminate — the protocols'"
        "\ntimeouts and keepalive updates keep the system live even when half"
        "\nthe control messages vanish.  Load sharing itself decays with loss:"
        "\nthe push designs (RESERVE, and Sy-I's advert plane) lose their"
        "\nremote-placement opportunities as advertisements evaporate, while"
        "\nthe pull designs degrade only with lost poll replies."
    )


if __name__ == "__main__":
    main()
