#!/usr/bin/env python3
"""Compare all seven RMS designs on an identical Grid and workload.

This is the workload the paper's introduction motivates: a federated
Grid whose clusters exchange jobs to meet user benefit bounds.  Every
design sees the same topology, the same resources, and the *same* job
arrival sequence (seeded streams), so differences in the table below
are purely the resource-management protocol.

Run:  python examples/compare_rms.py
"""

from repro.experiments import SimulationConfig, run_simulation
from repro.experiments.reporting import format_table
from repro.rms import get_rms, rms_names


def main() -> None:
    rows = []
    for rms in rms_names():
        # Each design runs at its Step-1 tuned update interval: the
        # distributed designs burn tau ~ 8.5 to sit in the efficiency
        # band; CENTRAL's single scheduler saturates there, so its
        # healthy operating point is a much lazier tau = 40.
        tau = 40.0 if rms == "CENTRAL" else 8.5
        metrics = run_simulation(
            SimulationConfig(
                rms=rms,
                n_schedulers=8,
                n_resources=24,
                workload_rate=0.0067,
                update_interval=tau,
                l_p=2,
                horizon=12000.0,
                seed=7,
            )
        )
        info = get_rms(rms)
        rows.append(
            [
                rms,
                info.mechanism,
                metrics.efficiency,
                metrics.record.G,
                metrics.success_rate,
                metrics.mean_response,
                metrics.messages_sent,
            ]
        )

    print("Seven RMS designs, identical Grid + workload (24 resources, 8 clusters):\n")
    print(
        format_table(
            ["RMS", "mechanism", "E", "G [tu]", "success", "mean resp", "messages"],
            rows,
            precision=3,
        )
    )
    print(
        "\nReading guide: CENTRAL pays almost no coordination overhead at this"
        "\nscale (one scheduler, no polling) but its single message server is"
        "\nthe piece that saturates when the system grows — which is exactly"
        "\nwhat the scalability metric in examples/scalability_study.py measures."
    )


if __name__ == "__main__":
    main()
