#!/usr/bin/env python3
"""Error bars: how stable are the comparisons across random seeds?

Every figure in the reproduction is a point estimate from one seeded
run.  This example uses the replication machinery to put 95% confidence
intervals on the headline comparison (LOWEST vs Sy-I base overhead) and
demonstrates that the ordering survives sampling noise.

Run:  python examples/replication_study.py
"""

from repro.experiments import SimulationConfig, replicate
from repro.experiments.reporting import format_table


def main() -> None:
    rows = []
    results = {}
    for rms in ("LOWEST", "Sy-I"):
        res = replicate(
            SimulationConfig(
                rms=rms,
                n_schedulers=8,
                n_resources=24,
                workload_rate=0.0067,
                update_interval=8.5,
                horizon=12000.0,
                seed=7,
            ),
            n=5,
        )
        results[rms] = res
        g = res["G"]
        e = res["efficiency"]
        s = res["success_rate"]
        rows.append(
            [
                rms,
                f"{g.mean:.0f} ± {1.96 * g.sem:.0f}",
                f"{e.mean:.3f} ± {1.96 * e.sem:.3f}",
                f"{s.mean:.3f}",
            ]
        )

    print("Base-scale operating points over 5 independent seeds (95% CI):\n")
    print(format_table(["RMS", "G", "E", "success"], rows))

    g_low = results["LOWEST"]["G"]
    g_syi = results["Sy-I"]["G"]
    overlap = not (g_low.hi < g_syi.lo or g_syi.hi < g_low.lo)
    print(
        f"\nSy-I's mean overhead exceeds LOWEST's by "
        f"{g_syi.mean - g_low.mean:.0f} time units"
        + (
            " (intervals overlap — at base scale the gap is within noise,"
            "\nwhich matches the paper: the designs separate as the system"
            "\nscales, not at k0)."
            if overlap
            else " and the intervals do not overlap."
        )
    )


if __name__ == "__main__":
    main()
