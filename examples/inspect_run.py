#!/usr/bin/env python3
"""Post-mortem of a deliberately saturated run.

CENTRAL at an aggressive update interval is the canonical failure mode
of this study: one scheduler and one estimator drowning in status
traffic.  The inspection report shows exactly where the time went —
the G breakdown by activity, the saturated servers, the cluster
timeline, and timelines of the worst benefit-bound misses.

Run:  python examples/inspect_run.py
"""

from repro.experiments import SimulationConfig, build_system, inspection_report
from repro.grid import JobState


def main() -> None:
    cfg = SimulationConfig(
        rms="CENTRAL",
        n_schedulers=8,           # ignored by CENTRAL (one scheduler)
        n_resources=24,
        workload_rate=0.0067,
        update_interval=8.5,      # band-level updates: saturates CENTRAL
        horizon=12000.0,
        drain=20000.0,
        seed=7,
    )
    system = build_system(cfg)
    system.sim.run(until=cfg.horizon)
    deadline = cfg.horizon + cfg.drain
    while system.sim.now < deadline and any(
        j.state != JobState.COMPLETED for j in system.jobs
    ):
        system.sim.run(until=min(deadline, system.sim.now + 2000.0))

    print(inspection_report(system))
    print(
        "\nReading guide: the estimator (a single server for CENTRAL) sits"
        "\nat the top of the hot-spot table near 100% busy; update batches"
        "\nqueue behind it, the scheduler's view goes stale, and the worst"
        "\nmisses below are short jobs that spent their entire benefit"
        "\nbudget waiting in message queues."
    )


if __name__ == "__main__":
    main()
