#!/usr/bin/env python3
"""The paper's headline result: the isoefficiency scalability metric.

Runs the full four-step measurement procedure (paper §3.2) for CENTRAL
vs. LOWEST along the Case-1 scaling strategy (grow the resource pool
and the workload together, Table 2):

1. tune the base configuration into the efficiency band and adopt its
   efficiency as E0;
2. scale the system along k = 1..3;
3. at each scale, simulated annealing finds the enabler settings
   (update interval, neighborhood size, link delay) that minimize the
   RMS overhead G(k) while holding E(k) ~ E0;
4. the slope of G(k) is the scalability read-out.

Expect a few minutes of simulation.  For the full seven-design study
over every case, use the benchmark harness (benchmarks/README in the
repo root).

Run:  python examples/scalability_study.py
"""

from repro.core.annealing import AnnealingSchedule
from repro.core.procedure import ScalabilityProcedure
from repro.core.scaling import ScalingPath
from repro.experiments.cases import get_case, make_simulate
from repro.experiments.config import PROFILES
from repro.experiments.reporting import format_table


def main() -> None:
    case = get_case(1)  # Table 2: scale the RP by network size
    profile = PROFILES["ci"]
    rows = []
    details = {}
    for rms in ("CENTRAL", "LOWEST"):
        simulate = make_simulate(case, rms, profile)
        procedure = ScalabilityProcedure(
            simulate,
            case.enabler_space(),
            path=ScalingPath((1, 2, 3)),
            schedule=AnnealingSchedule(iterations=8, t0=0.5),
            seed=7,
        )
        result = procedure.run(name=rms)
        details[rms] = result
        rows.append(
            [
                rms,
                result.e0,
                *[f"{g:.2f}" for g in result.curves.g],
                f"{result.slopes.mean_g_slope:.2f}",
                result.slopes.scalable_through,
            ]
        )

    headers = ["RMS", "E0", "g(1)", "g(2)", "g(3)", "mean slope", "scalable thru"]
    print("Case 1 — scale the RP by network size (normalized overhead g(k)):\n")
    print(format_table(headers, rows, precision=2))

    print("\nPer-scale detail:")
    for rms, result in details.items():
        print(f"\n  {rms}: E0 = {result.e0:.3f} (base feasible: {result.base_feasible})")
        for point, eq2 in zip(result.points, result.eq2_ok):
            print(
                f"    k={point.scale:g}: G={point.G:10.1f}  E={point.efficiency:.3f}  "
                f"success={point.success_rate:.2f}  feasible={point.feasible}  "
                f"Eq.(2) holds={eq2}  tau={point.settings['update_interval']:g}"
            )

    print(
        "\nInterpretation (paper §3.4): the distributed design starts with far"
        "\nhigher absolute overhead, but its normalized overhead tracks the"
        "\nscaled workload; CENTRAL cannot hold its base efficiency once its"
        "\nsingle scheduler's per-decision scan grows with the pool."
    )


if __name__ == "__main__":
    main()
