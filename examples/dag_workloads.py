#!/usr/bin/env python3
"""Future-work extension: dependency-constrained (DAG) workloads.

The paper defers two things to future work: "(b) evaluating scenarios
where jobs have data dependencies and precedence constraints among
them and [(c)] use the framework to measure the scalability based on
the RP overhead H(k)".  Both are implemented here:

* jobs may depend on earlier jobs (pipeline-style DAGs); a child is
  held until every parent completes;
* each cross-cluster parent->child edge charges data staging to the RP
  overhead H, so H(k) becomes a real scalability axis.

This example sweeps the dependency probability and shows load sharing
getting *more expensive on the H axis* as pipelines fragment across
clusters — the effect the paper anticipated measuring.

Run:  python examples/dag_workloads.py
"""

from repro.experiments import SimulationConfig, build_system, summarize
from repro.experiments.reporting import format_table
from repro.grid import JobState


def run_one(rms: str, dependency_prob: float):
    # each design at its tuned operating point (cf. compare_rms.py)
    tau = 40.0 if rms == "CENTRAL" else 8.5
    cfg = SimulationConfig(
        rms=rms,
        n_schedulers=8,
        n_resources=24,
        workload_rate=0.0067,
        update_interval=tau,
        horizon=12000.0,
        drain=60000.0,
        dependency_prob=dependency_prob,
        seed=21,
    )
    system = build_system(cfg)
    system.sim.run(until=cfg.horizon)
    deadline = cfg.horizon + cfg.drain
    while system.sim.now < deadline and any(
        j.state != JobState.COMPLETED for j in system.jobs
    ):
        system.sim.run(until=min(deadline, system.sim.now + 2000.0))
    m = summarize(system)
    staged = system.coordinator.staged_edges if system.coordinator else 0
    return m, staged


def main() -> None:
    rows = []
    for rms in ("LOWEST", "CENTRAL"):
        for prob in (0.0, 0.3, 0.6):
            m, staged = run_one(rms, prob)
            rows.append(
                [rms, prob, m.record.H, staged, m.success_rate, m.mean_response]
            )
    print("DAG workloads: RP overhead H and staging vs dependency density:\n")
    print(
        format_table(
            ["RMS", "dep prob", "H [tu]", "staged edges", "success", "mean resp"],
            rows,
            precision=3,
        )
    )
    print(
        "\nLOWEST moves REMOTE jobs between clusters, so denser DAGs stage"
        "\nmore data (H grows); CENTRAL keeps a single cluster space and"
        "\npays almost nothing on the H axis — scalability along H(k) ranks"
        "\ndesigns differently than along G(k), which is exactly why the"
        "\npaper flags it as the next measurement to run."
    )


if __name__ == "__main__":
    main()
