#!/usr/bin/env python3
"""Quickstart: simulate one managed Grid and inspect its efficiency.

Builds the paper's managed-system model — a resource pool partitioned
into clusters, one scheduler per cluster running the LOWEST
load-sharing policy, a status-estimation plane, and a synthetic
supercomputer workload — runs it, and prints the F/G/H work
decomposition that the scalability metric is built on.

Run:  python examples/quickstart.py
"""

from repro.experiments import SimulationConfig, run_simulation


def main() -> None:
    config = SimulationConfig(
        rms="LOWEST",            # one of the paper's seven designs
        n_schedulers=8,          # clusters / schedulers
        n_resources=24,          # homogeneous resources
        workload_rate=0.0067,    # jobs per time unit, system wide
        update_interval=8.5,     # status-update period tau (enabler)
        l_p=2,                   # peers polled per REMOTE job
        horizon=12000.0,         # arrival window
        seed=7,
    )
    metrics = run_simulation(config)

    print("Managed system:", config.rms)
    print(f"  jobs submitted     : {metrics.jobs_submitted}")
    print(f"  jobs successful    : {metrics.jobs_successful} "
          f"({metrics.success_rate:.1%} met their benefit bound U_b)")
    print(f"  mean response time : {metrics.mean_response:.1f} time units")
    print(f"  throughput         : {metrics.throughput * 1000:.2f} successful jobs / 1000 tu")
    print()
    print("Work decomposition (the paper's performance model):")
    print(f"  F (useful work)    : {metrics.record.F:12.1f} time units")
    print(f"  G (RMS overhead)   : {metrics.record.G:12.1f} time units")
    print(f"  H (RP overhead)    : {metrics.record.H:12.1f} time units")
    print(f"  efficiency E=F/(F+G+H) = {metrics.efficiency:.3f}   "
          f"(paper's Step-1 band: [0.38, 0.42])")


if __name__ == "__main__":
    main()
